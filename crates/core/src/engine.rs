//! The unified mining engine: one entry point for every workload.
//!
//! The paper defines a single search skeleton — instance growth embedded in
//! a depth-first pattern growth — that GSgrow, CloGSgrow, and every
//! extension (top-k, maximal, gap-constrained) specialize. This module
//! exposes that skeleton through one composable API:
//!
//! * [`Miner`] — a builder over a [`SequenceDatabase`]: pick a support
//!   threshold, a [`Mode`], optional [`GapConstraints`], an optional top-k
//!   ranking, caps and ablation switches, then [`Miner::run`].
//! * [`MiningRequest`] — the plain-data description of a run, where every
//!   option is orthogonal. Combinations the legacy free functions could not
//!   express — gap-constrained top-k, constrained maximal — compose here
//!   for free.
//! * [`MiningSession`] — a prepared request bound to a database; run it to
//!   a [`MiningOutcome`], or stream it through a
//!   [`PatternSink`] with
//!   [`MiningSession::run_with_sink`] for memory-bounded consumption and
//!   cooperative cancellation.
//!
//! # Example
//!
//! ```
//! use seqdb::SequenceDatabase;
//! use rgs_core::{GapConstraints, Miner, Mode};
//!
//! let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
//!
//! // Closed mining (CloGSgrow), the paper's headline algorithm:
//! let closed = Miner::new(&db).min_sup(2).mode(Mode::Closed).run();
//! assert!(!closed.is_empty());
//!
//! // A previously impossible combination: gap-constrained top-k.
//! let constrained_topk = Miner::new(&db)
//!     .min_sup(1)
//!     .mode(Mode::Closed)
//!     .constraints(GapConstraints::max_gap(2))
//!     .top_k(5)
//!     .run();
//! assert!(constrained_topk.len() <= 5);
//! ```

use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::Instant;

use seqdb::SequenceDatabase;

use crate::clogsgrow::{mine_closed_seed, mine_closed_streaming};
use crate::closure::ClosureChecker;
use crate::config::MiningConfig;
use crate::constrained::{
    mine_all_constrained_seed, mine_all_constrained_streaming, ConstrainedSupportComputer,
};
use crate::constraints::GapConstraints;
use crate::gsgrow::{mine_all_seed, mine_all_streaming};
use crate::maximal::maximal_subset;
use crate::parallel::fan_out_shard_seeds;
use crate::pattern::Pattern;
use crate::prepared::{PreparedDb, PreparedParts, PreparedRef};
use crate::reference::closed_subset;
use crate::result::{MinedPattern, MiningOutcome, MiningStats};
use crate::sink::{CollectSink, PatternSink};
use crate::stream::PatternStream;
use crate::support::SupportSet;
use crate::topk::{run_top_k, run_top_k_parallel, TopKParams};

/// Default `k` when [`Mode::TopK`] is selected without an explicit
/// [`Miner::top_k`] call.
pub const DEFAULT_TOP_K: usize = 10;

/// Which pattern family a mining run reports.
///
/// Modes compose orthogonally with every other [`MiningRequest`] option:
/// constraints, top-k ranking, caps, support-set retention, and the
/// landmark-pruning ablation all apply to every mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Every frequent pattern (GSgrow, Algorithm 3).
    All,
    /// Closed frequent patterns (CloGSgrow, Algorithm 4) — the paper's
    /// headline algorithm and the default.
    #[default]
    Closed,
    /// Maximal frequent patterns: the subsumption frontier of the closed
    /// set (no frequent proper super-pattern).
    Maximal,
    /// The k best closed patterns ranked by support (TSP-style dynamic
    /// threshold). Equivalent to [`Mode::Closed`] plus [`Miner::top_k`];
    /// `k` defaults to [`DEFAULT_TOP_K`] unless set explicitly.
    TopK,
}

/// How a mining run executes: on the calling thread, or fanned out across
/// scoped worker threads.
///
/// Parallel execution shards the frequent single-event seeds — the roots of
/// the first-level DFS subtrees, which are fully independent — across
/// `std::thread::scope` workers. Each worker mines its subtrees into a
/// local buffer and the buffers are merged **in seed order**, so the
/// reported pattern list is bit-identical to the sequential one in every
/// mode. Top-k runs additionally share the dynamic support floor across
/// workers through an atomic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionPolicy {
    /// Everything runs on the calling thread (the default). This is also
    /// the only mode in which a [`PatternSink`] observes patterns
    /// incrementally during the search.
    #[default]
    Sequential,
    /// Seed subtrees are mined on up to `threads` scoped worker threads
    /// (`0` means one worker per available CPU). Results are buffered and
    /// merged deterministically; sinks observe them only after the merge.
    Parallel {
        /// Worker-thread count; `0` = `std::thread::available_parallelism`.
        threads: usize,
    },
}

impl ExecutionPolicy {
    /// The number of worker threads this policy resolves to (at least 1).
    pub fn effective_threads(&self) -> usize {
        match *self {
            ExecutionPolicy::Sequential => 1,
            ExecutionPolicy::Parallel { threads: 0 } => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            ExecutionPolicy::Parallel { threads } => threads.max(1),
        }
    }
}

/// The plain-data description of one mining run. Build it through
/// [`Miner`], or construct it directly and bind it with
/// [`Miner::from_request`].
#[derive(Debug, Clone, PartialEq)]
pub struct MiningRequest {
    /// Support threshold: only patterns with (constrained) repetitive
    /// support `>= min_sup` are considered. Under top-k ranking this acts
    /// as the hard floor below which patterns never qualify.
    pub min_sup: u64,
    /// Which pattern family to report.
    pub mode: Mode,
    /// Gap/window constraints on instances ([`GapConstraints::unbounded`]
    /// reproduces the paper's unconstrained semantics exactly).
    pub constraints: GapConstraints,
    /// Rank the result by support and keep only the best `k` patterns.
    /// `None` means report everything (unless `mode` is [`Mode::TopK`]).
    pub top_k: Option<usize>,
    /// Only patterns of at least this length are reported (0 = no filter).
    pub min_len: usize,
    /// Optional cap on pattern length explored by the DFS.
    pub max_pattern_length: Option<usize>,
    /// Optional cap on the number of reported patterns; hitting it marks
    /// the outcome as truncated. Applied uniformly across all modes.
    pub max_patterns: Option<usize>,
    /// Attach the leftmost support set to every reported pattern.
    pub keep_support_sets: bool,
    /// Ablation switch: disable the landmark border pruning of Theorem 5
    /// (closed mining only; the mined set is identical either way).
    pub use_landmark_pruning: bool,
    /// Sequential or parallel execution. The reported patterns are
    /// bit-identical either way; only wall-clock time (and incremental sink
    /// delivery) differ.
    pub execution: ExecutionPolicy,
}

impl Default for MiningRequest {
    fn default() -> Self {
        Self {
            min_sup: 2,
            mode: Mode::default(),
            constraints: GapConstraints::unbounded(),
            top_k: None,
            min_len: 0,
            max_pattern_length: None,
            max_patterns: None,
            keep_support_sets: false,
            use_landmark_pruning: true,
            execution: ExecutionPolicy::Sequential,
        }
    }
}

impl MiningRequest {
    /// Whether the result is ranked and truncated to the best `k`.
    pub fn is_ranked(&self) -> bool {
        self.top_k.is_some() || self.mode == Mode::TopK
    }

    /// The effective `k` of a ranked run.
    pub fn effective_k(&self) -> usize {
        self.top_k.unwrap_or(DEFAULT_TOP_K)
    }

    /// The mode with [`Mode::TopK`] resolved to its base family (closed).
    pub fn base_mode(&self) -> Mode {
        match self.mode {
            Mode::TopK => Mode::Closed,
            mode => mode,
        }
    }

    /// The legacy [`MiningConfig`] equivalent of this request's DFS knobs
    /// (`max_patterns` stays `None`: capping is the emission gate's job,
    /// both in the engine and in the pattern stream).
    pub(crate) fn to_config(&self) -> MiningConfig {
        MiningConfig {
            min_sup: self.min_sup,
            max_pattern_length: self.max_pattern_length,
            max_patterns: None, // capping is the emit gate's job
            keep_support_sets: self.keep_support_sets,
            use_landmark_pruning: self.use_landmark_pruning,
        }
    }
}

/// Where a mining run gets its (prepared) database from.
///
/// `Raw` is the lazy path of [`Miner::new`]: the query-independent parts
/// (index, occurrence counts, event order) are prepared on every run.
/// `Prepared`/`Shared` borrow a [`PreparedDb`] snapshot, so runs skip the
/// preparation entirely.
#[derive(Debug, Clone)]
pub(crate) enum DbHandle<'a> {
    Raw(&'a SequenceDatabase),
    Prepared(&'a PreparedDb),
    Shared(Arc<PreparedDb>),
}

impl DbHandle<'_> {
    fn database(&self) -> &SequenceDatabase {
        match self {
            DbHandle::Raw(db) => db,
            DbHandle::Prepared(prepared) => prepared.database(),
            DbHandle::Shared(prepared) => prepared.database(),
        }
    }
}

/// Builder for a mining run over one database: the canonical entry point of
/// this crate. See the [module docs](self) for an example.
#[derive(Debug, Clone)]
pub struct Miner<'a> {
    db: DbHandle<'a>,
    request: MiningRequest,
}

impl<'a> Miner<'a> {
    /// Starts a builder with default options: `min_sup = 2`, closed mining,
    /// no constraints, no ranking, no caps, sequential execution.
    ///
    /// This path prepares the database lazily on every run. When the same
    /// database serves several queries, prepare once — [`Miner::prepare`]
    /// or [`PreparedDb::new`] — and build miners with
    /// [`Miner::from_prepared`] / [`PreparedDb::miner`] instead.
    pub fn new(db: &'a SequenceDatabase) -> Self {
        Self {
            db: DbHandle::Raw(db),
            request: MiningRequest::default(),
        }
    }

    /// Starts a builder executing against a prepared snapshot: runs borrow
    /// `prepared` and skip all per-run preparation.
    pub fn from_prepared(prepared: &'a PreparedDb) -> Self {
        Self {
            db: DbHandle::Prepared(prepared),
            request: MiningRequest::default(),
        }
    }

    /// Starts a builder co-owning a shared prepared snapshot — the handle
    /// for concurrent multi-query traffic (the returned miner is `'static`
    /// and can move into worker threads).
    pub fn from_shared(prepared: Arc<PreparedDb>) -> Miner<'static> {
        Miner {
            db: DbHandle::Shared(prepared),
            request: MiningRequest::default(),
        }
    }

    /// Starts a builder over a snapshot image on disk (the cold-start
    /// path): opens and validates the file written by
    /// [`PreparedDb::write_snapshot`], mapping every arena zero-copy
    /// instead of re-tokenizing and re-indexing. The returned miner
    /// co-owns the snapshot like [`Miner::from_shared`], so it is
    /// `'static` and its output is bit-identical to mining the original
    /// in-memory preparation.
    pub fn from_snapshot(
        path: impl AsRef<std::path::Path>,
    ) -> Result<Miner<'static>, seqdb::SnapshotError> {
        Ok(Miner::from_shared(Arc::new(PreparedDb::open_snapshot(
            path,
        )?)))
    }

    /// Binds an existing request to a database (lazy preparation, like
    /// [`Miner::new`]).
    pub fn from_request(db: &'a SequenceDatabase, request: MiningRequest) -> Self {
        Self {
            db: DbHandle::Raw(db),
            request,
        }
    }

    /// Prepares the underlying database into an owned [`PreparedDb`]
    /// snapshot (the two-phase flow: prepare once, then run many queries
    /// against it via [`PreparedDb::miner`]). The current builder options
    /// are not carried over; they describe queries, not the snapshot.
    pub fn prepare(&self) -> PreparedDb {
        match &self.db {
            DbHandle::Raw(db) => PreparedDb::new(db),
            DbHandle::Prepared(prepared) => (*prepared).clone(),
            DbHandle::Shared(prepared) => prepared.as_ref().clone(),
        }
    }

    /// Imports the DFS knobs of a legacy [`MiningConfig`] (threshold, caps,
    /// support-set retention, pruning ablation). Used by the deprecated
    /// free-function shims; new code should set options directly.
    pub fn from_config(mut self, config: &MiningConfig) -> Self {
        self.request.min_sup = config.min_sup;
        self.request.max_pattern_length = config.max_pattern_length;
        self.request.max_patterns = config.max_patterns;
        self.request.keep_support_sets = config.keep_support_sets;
        self.request.use_landmark_pruning = config.use_landmark_pruning;
        self
    }

    /// Replaces the whole request in one piece — the handle for callers
    /// that assemble a [`MiningRequest`] elsewhere (the serve layer builds
    /// one from each wire body) rather than through the fluent setters.
    pub fn with_request(mut self, request: MiningRequest) -> Self {
        self.request = request;
        self
    }

    /// Sets the support threshold (floor, under top-k ranking).
    pub fn min_sup(mut self, min_sup: u64) -> Self {
        self.request.min_sup = min_sup;
        self
    }

    /// Sets the pattern family to report.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.request.mode = mode;
        self
    }

    /// Applies gap/window constraints to instances.
    pub fn constraints(mut self, constraints: GapConstraints) -> Self {
        self.request.constraints = constraints;
        self
    }

    /// Ranks the result by support and keeps only the best `k` patterns.
    pub fn top_k(mut self, k: usize) -> Self {
        self.request.top_k = Some(k);
        self
    }

    /// Only reports patterns of at least this length.
    pub fn min_len(mut self, min_len: usize) -> Self {
        self.request.min_len = min_len;
        self
    }

    /// Caps the pattern length explored by the DFS.
    pub fn max_pattern_length(mut self, max_len: usize) -> Self {
        self.request.max_pattern_length = Some(max_len);
        self
    }

    /// Caps the number of reported patterns (marks the outcome truncated
    /// when hit).
    pub fn max_patterns(mut self, cap: usize) -> Self {
        self.request.max_patterns = Some(cap);
        self
    }

    /// Attaches the leftmost support set to every reported pattern.
    pub fn keep_support_sets(mut self) -> Self {
        self.request.keep_support_sets = true;
        self
    }

    /// Enables or disables the landmark border pruning of Theorem 5
    /// (ablation switch for closed mining).
    pub fn landmark_pruning(mut self, enabled: bool) -> Self {
        self.request.use_landmark_pruning = enabled;
        self
    }

    /// Sets the execution policy (see [`ExecutionPolicy`]).
    pub fn execution(mut self, execution: ExecutionPolicy) -> Self {
        self.request.execution = execution;
        self
    }

    /// Shorthand: mine on `threads` worker threads (`<= 1` selects
    /// sequential execution, `0` is **not** auto here — use
    /// [`Miner::execution`] with [`ExecutionPolicy::Parallel`] for that).
    /// Output is bit-identical to sequential execution.
    pub fn threads(mut self, threads: usize) -> Self {
        self.request.execution = if threads <= 1 {
            ExecutionPolicy::Sequential
        } else {
            ExecutionPolicy::Parallel { threads }
        };
        self
    }

    /// The request built so far.
    pub fn request(&self) -> &MiningRequest {
        &self.request
    }

    /// Finalizes the builder into a reusable session.
    pub fn session(self) -> MiningSession<'a> {
        MiningSession {
            db: self.db,
            request: self.request,
        }
    }

    /// Runs the request and materializes the result.
    pub fn run(self) -> MiningOutcome {
        self.session().run()
    }

    /// Runs the request, streaming every pattern through `sink`.
    pub fn run_with_sink(self, sink: &mut dyn PatternSink) -> MiningReport {
        self.session().run_with_sink(sink)
    }
}

/// What a streamed run reports back: statistics plus how the run ended.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningReport {
    /// Search statistics (DFS nodes, instance growths, pruning counters,
    /// elapsed wall-clock time — recorded uniformly for every mode).
    pub stats: MiningStats,
    /// Number of patterns handed to the sink.
    pub emitted: usize,
    /// `true` when the run stopped because `max_patterns` was reached.
    pub truncated: bool,
    /// `true` when the sink cancelled the run via [`ControlFlow::Break`].
    pub cancelled: bool,
}

impl MiningReport {
    /// Serializes the report as a JSON object (hand-rolled — the workspace
    /// carries no serialization dependency; see [`crate::json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"emitted\": {}, \"truncated\": {}, \"cancelled\": {}, \"stats\": \
             {{\"visited\": {}, \"instance_growths\": {}, \"non_closed_filtered\": {}, \
             \"landmark_border_prunes\": {}, \"elapsed_seconds\": {:.6}}}}}",
            self.emitted,
            self.truncated,
            self.cancelled,
            self.stats.visited,
            self.stats.instance_growths,
            self.stats.non_closed_filtered,
            self.stats.landmark_border_prunes,
            self.stats.elapsed_seconds,
        )
    }
}

/// A prepared mining request bound to a database. Obtained from
/// [`Miner::session`]; can be run repeatedly, streamed through a sink, or
/// pulled from as an iterator via [`MiningSession::stream`].
#[derive(Debug, Clone)]
pub struct MiningSession<'a> {
    pub(crate) db: DbHandle<'a>,
    request: MiningRequest,
}

impl MiningSession<'_> {
    /// The request this session executes.
    pub fn request(&self) -> &MiningRequest {
        &self.request
    }

    /// The database this session mines.
    pub fn database(&self) -> &SequenceDatabase {
        self.db.database()
    }

    /// Returns a pull-based iterator over the patterns this session would
    /// report, in the same order as [`MiningSession::run`].
    ///
    /// For the incrementally streamable configurations (`All`/`Closed`
    /// without constraints, constrained `All`, sequential execution) the
    /// search advances lazily, one pattern per [`Iterator::next`] call —
    /// dropping the stream abandons the rest of the search, so `take`,
    /// `find`, and friends early-exit for free. Other configurations
    /// (ranked, maximal, closed-constrained, parallel execution) need a
    /// global pass and are materialized up front, then iterated.
    pub fn stream(&self) -> PatternStream<'_> {
        PatternStream::new(self)
    }

    /// Runs the request and materializes the result into a
    /// [`MiningOutcome`] (patterns in emission order, statistics, and the
    /// uniform truncation flag).
    pub fn run(&self) -> MiningOutcome {
        let mut collect = CollectSink::new();
        let report = self.run_with_sink(&mut collect);
        MiningOutcome {
            patterns: collect.into_patterns(),
            stats: report.stats,
            truncated: report.truncated,
        }
    }

    /// Runs the request, pushing every reported pattern through `sink` as
    /// it is found (incrementally for `All`/`Closed` without constraints
    /// and for constrained `All` under sequential execution; after the
    /// necessary global filter — or the deterministic parallel merge — for
    /// everything else). The sink can cancel at any emission point by
    /// returning [`ControlFlow::Break`].
    pub fn run_with_sink(&self, sink: &mut dyn PatternSink) -> MiningReport {
        let start = Instant::now();
        let parts_storage;
        let prepared: PreparedRef<'_> = match &self.db {
            DbHandle::Raw(db) => {
                parts_storage = PreparedParts::build(db);
                PreparedRef {
                    db,
                    parts: &parts_storage,
                }
            }
            DbHandle::Prepared(prepared) => prepared.as_prepared_ref(),
            DbHandle::Shared(prepared) => {
                let prepared: &PreparedDb = prepared;
                prepared.as_prepared_ref()
            }
        };

        let req = &self.request;
        let config = req.to_config();
        let mut gate = EmitGate {
            sink,
            min_len: req.min_len,
            keep: req.keep_support_sets,
            cap: req.max_patterns,
            emitted: 0,
            truncated: false,
            cancelled: false,
        };

        let threads = req.execution.effective_threads();
        let mut stats = if req.is_ranked() {
            let (patterns, stats, truncated) = self.collect_ranked(prepared, &config, threads);
            gate.truncated |= truncated;
            gate.drain(patterns);
            stats
        } else {
            match (req.base_mode(), req.constraints.is_unbounded()) {
                // The three incrementally streamable modes: parallel runs
                // buffer per seed and drain the deterministic merge; the
                // global-filter modes below are thread-aware through their
                // basis collectors.
                (Mode::All, true) | (Mode::Closed, true) | (Mode::All, false) if threads > 1 => {
                    let (patterns, stats) = self.mine_merged_parallel(
                        prepared,
                        &config,
                        threads,
                        req.base_mode(),
                        req.min_len,
                        req.keep_support_sets,
                        req.max_patterns,
                    );
                    gate.drain(patterns);
                    stats
                }
                (Mode::All, true) => {
                    mine_all_streaming(prepared, &config, &mut |p, s| gate.emit(p, s))
                }
                (Mode::Closed, true) => {
                    mine_closed_streaming(prepared, &config, &mut |p, s| gate.emit(p, s))
                }
                (Mode::All, false) => mine_all_constrained_streaming(
                    prepared,
                    &config,
                    req.constraints,
                    &mut |p, s| gate.emit(p, s),
                ),
                (Mode::Maximal, true) => {
                    let (patterns, stats, truncated) =
                        self.collect_closed_basis(prepared, &config, threads);
                    gate.truncated |= truncated;
                    gate.drain(maximal_subset(&patterns));
                    stats
                }
                (Mode::Closed, false) => {
                    let (patterns, stats, truncated) =
                        self.collect_constrained_basis(prepared, &config, threads);
                    gate.truncated |= truncated;
                    gate.drain(closed_subset(&patterns));
                    stats
                }
                (Mode::Maximal, false) => {
                    let (patterns, stats, truncated) =
                        self.collect_constrained_basis(prepared, &config, threads);
                    gate.truncated |= truncated;
                    gate.drain(maximal_subset(&patterns));
                    stats
                }
                (Mode::TopK, _) => unreachable!("TopK resolves to a ranked run"),
            }
        };

        stats.set_elapsed(start.elapsed());
        MiningReport {
            stats,
            emitted: gate.emitted,
            truncated: gate.truncated,
            cancelled: gate.cancelled,
        }
    }

    /// Fans the frequent seeds of one streaming mode (`All`/`Closed`
    /// unbounded, constrained `All`) out across workers through the
    /// two-level (shard × seed) queue and returns the merged pattern list
    /// in sequential emission order: the grid phase computes each seed's
    /// per-shard initial support fragments, the seed phase glues them (in
    /// shard order, which is global sequence order) and mines the subtree
    /// with shard-routed support computation. With one shard the fragment
    /// *is* the initial support set — the unsharded path is the same code.
    ///
    /// `min_len`, `keep`, and the per-seed `cap` mirror the emission gate:
    /// within a single seed's buffer only the first `cap` patterns can ever
    /// be emitted globally (earlier seeds can only push them further back),
    /// so capping each buffer bounds memory without changing the output.
    #[allow(clippy::too_many_arguments)] // internal dispatch, not an API
    fn mine_merged_parallel(
        &self,
        prepared: PreparedRef<'_>,
        config: &MiningConfig,
        threads: usize,
        mode: Mode,
        min_len: usize,
        keep: bool,
        cap: Option<usize>,
    ) -> (Vec<MinedPattern>, MiningStats) {
        let req = &self.request;
        let min_sup = config.effective_min_sup();
        let events = prepared.parts.frequent_events(min_sup);
        let num_shards = prepared.parts.index.num_shards();
        let sc = prepared.support_computer();
        let unbounded = req.constraints.is_unbounded();
        let checker = if mode == Mode::Closed {
            Some(ClosureChecker::new(&sc, &events))
        } else {
            None
        };
        let csc = if unbounded {
            None
        } else {
            Some(ConstrainedSupportComputer::with_support_computer(
                prepared.support_computer(),
                req.constraints,
            ))
        };

        let buffers = fan_out_shard_seeds(
            threads,
            num_shards,
            events.len(),
            |i, shard| {
                let mut fragment = SupportSet::new();
                sc.initial_support_fragment_into(events[i], shard, &mut fragment);
                fragment
            },
            |i, fragments| {
                let seed = events[i];
                let mut initial = SupportSet::new();
                for fragment in &fragments {
                    initial.append_fragment(fragment);
                }
                let mut patterns: Vec<MinedPattern> = Vec::new();
                let mut emit = |p: &Pattern, s: &SupportSet| -> ControlFlow<()> {
                    if p.len() < min_len {
                        return ControlFlow::Continue(());
                    }
                    let mut mined = MinedPattern::new(p.clone(), s.support());
                    if keep {
                        mined.support_set = Some(s.clone());
                    }
                    patterns.push(mined);
                    if cap.is_some_and(|c| patterns.len() >= c) {
                        return ControlFlow::Break(());
                    }
                    ControlFlow::Continue(())
                };
                let (stats, _) = match (mode, unbounded) {
                    (Mode::All, true) => {
                        mine_all_seed(&sc, config, min_sup, &events, seed, initial, &mut emit)
                    }
                    (Mode::Closed, true) => mine_closed_seed(
                        &sc,
                        checker.as_ref().expect("closed checker"),
                        config,
                        min_sup,
                        &events,
                        seed,
                        initial,
                        &mut emit,
                    ),
                    (Mode::All, false) => mine_all_constrained_seed(
                        csc.as_ref().expect("constrained computer"),
                        config,
                        min_sup,
                        &events,
                        seed,
                        initial,
                        &mut emit,
                    ),
                    _ => unreachable!("only streaming modes are merged in parallel"),
                };
                (patterns, stats)
            },
        );

        let mut stats = MiningStats::default();
        let mut merged = Vec::new();
        for (patterns, seed_stats) in buffers {
            stats.merge(&seed_stats);
            merged.extend(patterns);
        }
        (merged, stats)
    }

    /// Ranked runs: the best `k` patterns of the base mode, sorted by
    /// support, then length, then lexicographically.
    fn collect_ranked(
        &self,
        prepared: PreparedRef<'_>,
        config: &MiningConfig,
        threads: usize,
    ) -> (Vec<MinedPattern>, MiningStats, bool) {
        let req = &self.request;
        let k = req.effective_k();
        if k == 0 {
            return (Vec::new(), MiningStats::default(), false);
        }
        if req.constraints.is_unbounded() && req.base_mode() != Mode::Maximal {
            // The optimized TSP-style search with a dynamically raised
            // threshold (Apriori lets it prune subtrees below the current
            // k-th best support).
            let params = TopKParams {
                k,
                min_len: req.min_len,
                closed_only: req.base_mode() == Mode::Closed,
                min_sup_floor: req.min_sup.max(1),
                max_pattern_length: req.max_pattern_length,
                keep_support_sets: req.keep_support_sets,
            };
            let (patterns, stats) = if threads > 1 {
                run_top_k_parallel(prepared, &params, threads)
            } else {
                run_top_k(prepared, &params)
            };
            return (patterns, stats, false);
        }
        // General path (constrained and/or maximal): materialize the base
        // family, rank, truncate. A truncated basis means the ranking may
        // have missed better patterns, so the flag must propagate.
        let (basis, stats, truncated) = if req.constraints.is_unbounded() {
            self.collect_closed_basis(prepared, config, threads)
        } else {
            self.collect_constrained_basis(prepared, config, threads)
        };
        let mut patterns = match req.base_mode() {
            Mode::All => basis,
            Mode::Closed => closed_subset(&basis),
            Mode::Maximal => maximal_subset(&if req.constraints.is_unbounded() {
                basis
            } else {
                closed_subset(&basis)
            }),
            Mode::TopK => unreachable!("base_mode never returns TopK"),
        };
        patterns.retain(|mp| mp.pattern.len() >= self.request.min_len);
        crate::result::sort_patterns_for_report(&mut patterns);
        patterns.truncate(k);
        (patterns, stats, truncated)
    }

    /// Runs CloGSgrow, collecting the closed set as the basis for maximal
    /// filtering. Honors the pattern cap mid-search for safety (sequential)
    /// or by truncating the deterministic merge to the same prefix
    /// (parallel).
    fn collect_closed_basis(
        &self,
        prepared: PreparedRef<'_>,
        config: &MiningConfig,
        threads: usize,
    ) -> (Vec<MinedPattern>, MiningStats, bool) {
        if threads > 1 {
            let (patterns, stats) = self.mine_merged_parallel(
                prepared,
                config,
                threads,
                Mode::Closed,
                0,
                config.keep_support_sets,
                self.request.max_patterns,
            );
            return cap_basis(patterns, stats, self.request.max_patterns);
        }
        let mut collector = Collector::new(config, self.request.max_patterns);
        let stats = mine_closed_streaming(prepared, config, &mut |p, s| collector.emit(p, s));
        (collector.patterns, stats, collector.truncated)
    }

    /// Runs constrained GSgrow, collecting the complete constrained-frequent
    /// set as the basis for closed/maximal filtering under constraints
    /// (Theorem 5 pruning is unsound there, so filtering the complete set is
    /// the sound construction — see [`crate::constrained`]).
    fn collect_constrained_basis(
        &self,
        prepared: PreparedRef<'_>,
        config: &MiningConfig,
        threads: usize,
    ) -> (Vec<MinedPattern>, MiningStats, bool) {
        if threads > 1 {
            let (patterns, stats) = self.mine_merged_parallel(
                prepared,
                config,
                threads,
                Mode::All,
                0,
                config.keep_support_sets,
                self.request.max_patterns,
            );
            return cap_basis(patterns, stats, self.request.max_patterns);
        }
        let mut collector = Collector::new(config, self.request.max_patterns);
        let stats = mine_all_constrained_streaming(
            prepared,
            config,
            self.request.constraints,
            &mut |p, s| collector.emit(p, s),
        );
        (collector.patterns, stats, collector.truncated)
    }
}

/// Applies the uniform pattern cap to a merged parallel basis: the
/// sequential collector stops exactly at `cap` patterns in DFS order, so
/// truncating the seed-ordered merge to the same prefix (and flagging it)
/// reproduces its result bit for bit.
fn cap_basis(
    mut patterns: Vec<MinedPattern>,
    stats: MiningStats,
    cap: Option<usize>,
) -> (Vec<MinedPattern>, MiningStats, bool) {
    let truncated = cap.is_some_and(|c| patterns.len() >= c);
    if let Some(c) = cap {
        patterns.truncate(c);
    }
    (patterns, stats, truncated)
}

/// Internal collector used for basis runs (closed set for maximal mining,
/// constrained-frequent set for constrained closed/maximal).
struct Collector {
    patterns: Vec<MinedPattern>,
    keep: bool,
    cap: Option<usize>,
    truncated: bool,
}

impl Collector {
    fn new(config: &MiningConfig, cap: Option<usize>) -> Self {
        Self {
            patterns: Vec::new(),
            keep: config.keep_support_sets,
            // Basis runs respect the uniform cap mid-search as a safety
            // valve (a truncated basis makes the result a best-effort
            // frontier, exactly like the legacy functions); the final
            // emission applies the cap again.
            cap,
            truncated: false,
        }
    }

    fn emit(&mut self, pattern: &Pattern, support: &SupportSet) -> ControlFlow<()> {
        let mut mined = MinedPattern::new(pattern.clone(), support.support());
        if self.keep {
            mined.support_set = Some(support.clone());
        }
        self.patterns.push(mined);
        if let Some(cap) = self.cap {
            if self.patterns.len() >= cap {
                self.truncated = true;
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    }
}

/// The emission gate between the search and the user sink: applies the
/// minimum-length filter, support-set retention, the uniform pattern cap,
/// and records how the run ended.
struct EmitGate<'s> {
    sink: &'s mut dyn PatternSink,
    min_len: usize,
    keep: bool,
    cap: Option<usize>,
    emitted: usize,
    truncated: bool,
    cancelled: bool,
}

impl EmitGate<'_> {
    /// Emission point for streaming searches.
    fn emit(&mut self, pattern: &Pattern, support: &SupportSet) -> ControlFlow<()> {
        if pattern.len() < self.min_len {
            return ControlFlow::Continue(());
        }
        let mut mined = MinedPattern::new(pattern.clone(), support.support());
        if self.keep {
            mined.support_set = Some(support.clone());
        }
        self.forward(mined)
    }

    /// Emission point for pre-collected result lists.
    fn drain(&mut self, patterns: Vec<MinedPattern>) {
        for mined in patterns {
            if mined.pattern.len() < self.min_len {
                continue;
            }
            if self.forward(mined).is_break() {
                break;
            }
        }
    }

    fn forward(&mut self, mined: MinedPattern) -> ControlFlow<()> {
        self.emitted += 1;
        if self.sink.accept(mined).is_break() {
            self.cancelled = true;
            return ControlFlow::Break(());
        }
        if let Some(cap) = self.cap {
            if self.emitted >= cap {
                self.truncated = true;
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {

    use super::*;
    use crate::constrained::constrained_support;
    use crate::reference::pattern_set;

    fn constrained_all(
        db: &seqdb::SequenceDatabase,
        config: &crate::MiningConfig,
        constraints: crate::GapConstraints,
    ) -> crate::MiningOutcome {
        crate::Miner::new(db)
            .from_config(config)
            .mode(crate::Mode::All)
            .constraints(constraints)
            .run()
    }

    fn constrained_closed(
        db: &seqdb::SequenceDatabase,
        config: &crate::MiningConfig,
        constraints: crate::GapConstraints,
    ) -> crate::MiningOutcome {
        crate::Miner::new(db)
            .from_config(config)
            .mode(crate::Mode::Closed)
            .constraints(constraints)
            .run()
    }

    use crate::sink::{BudgetSink, CountSink};

    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    fn example_1_1() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"])
    }

    #[test]
    fn mode_top_k_defaults_to_ranked_closed_mining() {
        let db = running_example();
        let via_mode = Miner::new(&db).min_sup(1).mode(Mode::TopK).min_len(2).run();
        let via_option = Miner::new(&db)
            .min_sup(1)
            .mode(Mode::Closed)
            .top_k(DEFAULT_TOP_K)
            .min_len(2)
            .run();
        assert_eq!(via_mode.patterns, via_option.patterns);
        assert!(via_mode.len() <= DEFAULT_TOP_K);
    }

    #[test]
    fn constrained_top_k_composes() {
        // The combination the legacy API could not express.
        let db = running_example();
        let constraints = GapConstraints::max_gap(1);
        let outcome = Miner::new(&db)
            .min_sup(1)
            .mode(Mode::Closed)
            .constraints(constraints)
            .top_k(4)
            .min_len(2)
            .run();
        assert!(outcome.len() <= 4);
        assert!(!outcome.is_empty());
        // Every reported pattern carries its true *constrained* support and
        // the list is sorted by descending support.
        for mp in &outcome.patterns {
            assert_eq!(
                mp.support,
                constrained_support(&db, mp.pattern.events(), constraints)
            );
            assert!(mp.pattern.len() >= 2);
        }
        for w in outcome.patterns.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
        // And it agrees with ranking the full constrained closed set.
        let mut full = constrained_closed(&db, &MiningConfig::new(1), constraints);
        full.patterns.retain(|mp| mp.pattern.len() >= 2);
        full.sort_for_report();
        full.patterns.truncate(4);
        assert_eq!(outcome.patterns, full.patterns);
    }

    #[test]
    fn constrained_maximal_composes() {
        let db = running_example();
        let constraints = GapConstraints::max_gap(2);
        let maximal = Miner::new(&db)
            .min_sup(2)
            .mode(Mode::Maximal)
            .constraints(constraints)
            .run();
        let all = constrained_all(&db, &MiningConfig::new(2), constraints);
        assert!(!maximal.is_empty());
        // Frontier property within the constrained-frequent set.
        for mp in &maximal.patterns {
            assert!(all.contains(&mp.pattern));
            for other in &all.patterns {
                assert!(!other.pattern.is_proper_superpattern_of(&mp.pattern));
            }
        }
        for mp in &all.patterns {
            assert!(
                maximal
                    .patterns
                    .iter()
                    .any(|m| mp.pattern == m.pattern || mp.pattern.is_subpattern_of(&m.pattern)),
                "{:?} not covered",
                mp.pattern
            );
        }
    }

    #[test]
    fn streaming_sink_sees_patterns_incrementally_and_can_cancel() {
        let db = running_example();
        let mut seen = Vec::new();
        let report =
            Miner::new(&db)
                .min_sup(2)
                .mode(Mode::All)
                .run_with_sink(&mut |mp: MinedPattern| {
                    seen.push(mp);
                    if seen.len() == 3 {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                });
        assert_eq!(seen.len(), 3);
        assert_eq!(report.emitted, 3);
        assert!(report.cancelled);
        assert!(!report.truncated);
        // The first three patterns match the materialized run's order.
        let full = Miner::new(&db).min_sup(2).mode(Mode::All).run();
        assert_eq!(&full.patterns[..3], seen.as_slice());
    }

    #[test]
    fn budget_sink_bounds_emission() {
        let db = running_example();
        let mut budget = BudgetSink::new(CountSink::new(), 4);
        let report = Miner::new(&db)
            .min_sup(1)
            .mode(Mode::All)
            .run_with_sink(&mut budget);
        assert!(report.cancelled);
        assert_eq!(budget.into_inner().count, 4);
    }

    #[test]
    fn ranked_runs_propagate_basis_truncation() {
        let db = running_example();
        // The constrained-frequent basis at min_sup 1 holds far more than 3
        // patterns, so capping the basis makes the ranking best-effort — a
        // better pattern later in DFS order may never have been seen. The
        // truncated flag must say so even though k patterns fit under the cap.
        let outcome = Miner::new(&db)
            .min_sup(1)
            .mode(Mode::Closed)
            .constraints(GapConstraints::max_gap(3))
            .top_k(2)
            .max_patterns(3)
            .run();
        assert!(outcome.truncated, "basis truncation must propagate");
        assert!(outcome.len() <= 2);
    }

    #[test]
    fn uniform_truncation_across_modes() {
        let db = running_example();
        for mode in [Mode::All, Mode::Closed, Mode::Maximal] {
            let outcome = Miner::new(&db).min_sup(1).mode(mode).max_patterns(2).run();
            assert!(outcome.truncated, "{mode:?} did not truncate");
            assert!(outcome.len() <= 2, "{mode:?} exceeded the cap");
        }
        // Constrained modes truncate too.
        let constrained = Miner::new(&db)
            .min_sup(1)
            .mode(Mode::Closed)
            .constraints(GapConstraints::max_gap(3))
            .max_patterns(2)
            .run();
        assert!(constrained.truncated);
        assert!(constrained.len() <= 2);
    }

    #[test]
    fn elapsed_is_recorded_for_every_mode() {
        let db = running_example();
        let requests: Vec<Miner<'_>> = vec![
            Miner::new(&db).min_sup(2).mode(Mode::All),
            Miner::new(&db).min_sup(2).mode(Mode::Closed),
            Miner::new(&db).min_sup(2).mode(Mode::Maximal),
            Miner::new(&db).min_sup(2).mode(Mode::TopK),
            Miner::new(&db).min_sup(2).mode(Mode::TopK).top_k(0),
            Miner::new(&db)
                .min_sup(2)
                .mode(Mode::Closed)
                .constraints(GapConstraints::max_gap(2)),
            Miner::new(&db)
                .min_sup(2)
                .mode(Mode::Maximal)
                .constraints(GapConstraints::max_gap(2))
                .top_k(3),
        ];
        for miner in requests {
            let request = miner.request().clone();
            let outcome = miner.run();
            assert!(
                outcome.stats.elapsed_seconds > 0.0,
                "elapsed not recorded for {request:?}"
            );
        }
    }

    #[test]
    fn min_len_filter_applies_to_unranked_modes() {
        let db = running_example();
        let outcome = Miner::new(&db).min_sup(2).mode(Mode::All).min_len(2).run();
        assert!(!outcome.is_empty());
        for mp in &outcome.patterns {
            assert!(mp.pattern.len() >= 2);
        }
    }

    #[test]
    fn session_is_reusable() {
        let db = running_example();
        let session = Miner::new(&db).min_sup(2).mode(Mode::Closed).session();
        let a = session.run();
        let b = session.run();
        assert_eq!(a.patterns, b.patterns);
        assert_eq!(session.request().min_sup, 2);
        assert_eq!(session.database().num_sequences(), 2);
    }

    #[test]
    fn keep_support_sets_composes_with_ranking() {
        let db = running_example();
        let outcome = Miner::new(&db)
            .min_sup(1)
            .mode(Mode::Closed)
            .top_k(3)
            .min_len(2)
            .keep_support_sets()
            .run();
        assert!(!outcome.is_empty());
        for mp in &outcome.patterns {
            let set = mp.support_set.as_ref().expect("support set requested");
            assert_eq!(set.support(), mp.support);
        }
    }

    #[test]
    fn parallel_execution_is_bit_identical_across_modes() {
        let db = running_example();
        for mode in [Mode::All, Mode::Closed, Mode::Maximal, Mode::TopK] {
            for constraints in [GapConstraints::unbounded(), GapConstraints::max_gap(2)] {
                let sequential = Miner::new(&db)
                    .min_sup(2)
                    .mode(mode)
                    .constraints(constraints)
                    .keep_support_sets()
                    .run();
                for threads in [2, 3, 8] {
                    let parallel = Miner::new(&db)
                        .min_sup(2)
                        .mode(mode)
                        .constraints(constraints)
                        .keep_support_sets()
                        .threads(threads)
                        .run();
                    assert_eq!(
                        sequential.patterns,
                        parallel.patterns,
                        "{mode:?} with {} diverges at {threads} threads",
                        constraints.describe()
                    );
                    assert_eq!(sequential.truncated, parallel.truncated);
                }
            }
        }
    }

    #[test]
    fn parallel_execution_respects_caps_and_truncation() {
        let db = running_example();
        for mode in [Mode::All, Mode::Closed, Mode::Maximal] {
            let sequential = Miner::new(&db).min_sup(1).mode(mode).max_patterns(4).run();
            let parallel = Miner::new(&db)
                .min_sup(1)
                .mode(mode)
                .max_patterns(4)
                .threads(4)
                .run();
            assert_eq!(sequential.patterns, parallel.patterns, "{mode:?}");
            assert!(parallel.truncated, "{mode:?}");
        }
    }

    #[test]
    fn prepared_db_reuse_matches_fresh_runs() {
        let db = running_example();
        let prepared = Miner::new(&db).prepare();
        for min_sup in [1, 2, 3] {
            for mode in [Mode::All, Mode::Closed, Mode::Maximal, Mode::TopK] {
                let fresh = Miner::new(&db).min_sup(min_sup).mode(mode).run();
                let reused = prepared.miner().min_sup(min_sup).mode(mode).run();
                assert_eq!(
                    fresh.patterns, reused.patterns,
                    "{mode:?} at min_sup {min_sup}"
                );
            }
        }
    }

    #[test]
    fn shared_prepared_db_serves_concurrent_queries() {
        let db = running_example();
        let prepared = std::sync::Arc::new(PreparedDb::new(&db));
        let expected = prepared.miner().min_sup(2).mode(Mode::Closed).run();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = std::sync::Arc::clone(&prepared);
                std::thread::spawn(move || {
                    Miner::from_shared(shared)
                        .min_sup(2)
                        .mode(Mode::Closed)
                        .run()
                        .patterns
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), expected.patterns);
        }
    }

    #[test]
    fn stream_yields_the_materialized_sequence_for_every_mode() {
        let db = running_example();
        for mode in [Mode::All, Mode::Closed, Mode::Maximal, Mode::TopK] {
            for constraints in [GapConstraints::unbounded(), GapConstraints::max_gap(2)] {
                let session = Miner::new(&db)
                    .min_sup(2)
                    .mode(mode)
                    .constraints(constraints)
                    .session();
                let pulled: Vec<MinedPattern> = session.stream().collect();
                assert_eq!(
                    pulled,
                    session.run().patterns,
                    "{mode:?} with {}",
                    constraints.describe()
                );
            }
        }
    }

    #[test]
    fn stream_early_exit_and_gates() {
        let db = running_example();
        let session = Miner::new(&db).min_sup(2).mode(Mode::All).session();
        let full = session.run();
        // `take` early-exits without running the full search.
        let prefix: Vec<MinedPattern> = session.stream().take(3).collect();
        assert_eq!(prefix.as_slice(), &full.patterns[..3]);

        // min_len and max_patterns behave exactly like the push path.
        let gated_session = Miner::new(&db)
            .min_sup(2)
            .mode(Mode::All)
            .min_len(2)
            .max_patterns(3)
            .session();
        let mut stream = gated_session.stream();
        let gated: Vec<MinedPattern> = stream.by_ref().collect();
        assert_eq!(gated, gated_session.run().patterns);
        assert!(stream.truncated());
        assert_eq!(stream.emitted(), 3);

        // Support sets ride along when requested.
        let kept_session = Miner::new(&db)
            .min_sup(2)
            .mode(Mode::Closed)
            .keep_support_sets()
            .session();
        for mined in kept_session.stream() {
            let set = mined.support_set.as_ref().expect("support set requested");
            assert_eq!(set.support(), mined.support);
        }
    }

    #[test]
    fn stream_over_prepared_and_shared_sources() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        let expected = prepared.miner().min_sup(2).mode(Mode::Closed).run();
        let borrowed_session = prepared.miner().min_sup(2).mode(Mode::Closed).session();
        assert_eq!(
            borrowed_session.stream().collect::<Vec<_>>(),
            expected.patterns
        );
        let shared_session = Miner::from_shared(std::sync::Arc::new(prepared))
            .min_sup(2)
            .mode(Mode::Closed)
            .session();
        assert_eq!(
            shared_session.stream().collect::<Vec<_>>(),
            expected.patterns
        );
    }

    #[test]
    fn execution_policy_resolves_thread_counts() {
        assert_eq!(ExecutionPolicy::Sequential.effective_threads(), 1);
        assert_eq!(
            ExecutionPolicy::Parallel { threads: 5 }.effective_threads(),
            5
        );
        assert!(ExecutionPolicy::Parallel { threads: 0 }.effective_threads() >= 1);
        let req = Miner::new(&running_example()).threads(1).request().clone();
        assert_eq!(req.execution, ExecutionPolicy::Sequential);
    }

    #[test]
    fn mining_report_serializes_to_json() {
        let db = running_example();
        let mut sink = CountSink::new();
        let report = Miner::new(&db)
            .min_sup(2)
            .mode(Mode::Closed)
            .run_with_sink(&mut sink);
        let json = report.to_json();
        assert!(json.contains("\"emitted\""));
        assert!(json.contains("\"visited\""));
        assert!(json.contains("\"elapsed_seconds\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
    }

    #[test]
    fn unbounded_constraints_equal_no_constraints() {
        let db = example_1_1();
        let plain = Miner::new(&db).min_sup(2).mode(Mode::Closed).run();
        let unbounded = Miner::new(&db)
            .min_sup(2)
            .mode(Mode::Closed)
            .constraints(GapConstraints::unbounded())
            .run();
        assert_eq!(
            pattern_set(&plain.patterns),
            pattern_set(&unbounded.patterns)
        );
    }
}
