//! Pull-based pattern streams: consume a mining run as an [`Iterator`].
//!
//! [`PatternStream`] is the pull counterpart of the push-based
//! [`PatternSink`](crate::sink::PatternSink): instead of handing the engine
//! a callback, callers pull one [`MinedPattern`] at a time and compose with
//! ordinary iterator adapters. Dropping the stream abandons the rest of the
//! search, so `take(n)`, `find`, or an early `break` cancel mining without
//! writing a sink.
//!
//! For the configurations the engine can emit incrementally — `All` and
//! `Closed` without gap constraints, and constrained `All`, under
//! sequential execution — the stream drives an explicit-stack version of
//! the same DFS and does only as much search as has been pulled. The
//! remaining configurations (ranked, maximal, closed-constrained, parallel
//! execution) require a global pass; those are materialized on stream
//! creation and then iterated. In every case the yielded sequence is
//! identical to [`MiningOutcome::patterns`](crate::MiningOutcome).
//!
//! ```
//! use seqdb::SequenceDatabase;
//! use rgs_core::{Miner, Mode};
//!
//! let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
//! let session = Miner::new(&db).min_sup(2).mode(Mode::All).session();
//!
//! // Lazy pull: only as much DFS runs as the adapter consumes.
//! let first_three: Vec<String> = session
//!     .stream()
//!     .take(3)
//!     .map(|mp| mp.pattern.render(db.catalog()))
//!     .collect();
//! assert_eq!(first_three.len(), 3);
//! assert_eq!(first_three, {
//!     let full = session.run();
//!     full.patterns[..3]
//!         .iter()
//!         .map(|mp| mp.pattern.render(db.catalog()))
//!         .collect::<Vec<_>>()
//! });
//! ```

use std::iter::FusedIterator;
use std::sync::Arc;

use seqdb::{EventId, SequenceDatabase};

use crate::closure::{CheckScratch, ClosureChecker, ClosureStatus};
use crate::config::MiningConfig;
use crate::constrained::ConstrainedSupportComputer;
use crate::constraints::GapConstraints;
use crate::engine::{DbHandle, MiningSession, Mode};
use crate::growth::SetPool;
use crate::pattern::Pattern;
use crate::prepared::{PreparedDb, PreparedParts, PreparedRef};
use crate::result::MinedPattern;
use crate::support::SupportSet;

/// A pull-based iterator over the patterns of one mining run, in engine
/// emission order. Created by [`MiningSession::stream`].
pub struct PatternStream<'a> {
    state: StreamState<'a>,
    min_len: usize,
    keep: bool,
    cap: Option<usize>,
    emitted: usize,
    truncated: bool,
    done: bool,
}

/// Where a lazy stream's prepared database lives. The DFS machines below
/// hold no references into it — they receive a fresh [`PreparedRef`] on
/// every step — so the stream can own the preparation without
/// self-reference. Buffered streams never construct one (their run has
/// already resolved the database), so raw sources are prepared at most
/// once per stream.
enum StreamSource<'a> {
    /// Lazily prepared from a borrowed raw database ([`crate::Miner::new`]).
    Raw {
        db: &'a SequenceDatabase,
        parts: PreparedParts,
    },
    /// Borrowing a caller-owned [`PreparedDb`].
    Prepared(&'a PreparedDb),
    /// Co-owning a shared snapshot.
    Shared(Arc<PreparedDb>),
}

impl<'a> StreamSource<'a> {
    fn new(session: &MiningSession<'a>) -> Self {
        match &session.db {
            DbHandle::Raw(db) => StreamSource::Raw {
                db,
                parts: PreparedParts::build(db),
            },
            DbHandle::Prepared(prepared) => StreamSource::Prepared(prepared),
            DbHandle::Shared(prepared) => StreamSource::Shared(Arc::clone(prepared)),
        }
    }

    fn prepared_ref(&self) -> PreparedRef<'_> {
        match self {
            StreamSource::Raw { db, parts } => PreparedRef { db, parts },
            StreamSource::Prepared(prepared) => prepared.as_prepared_ref(),
            StreamSource::Shared(prepared) => prepared.as_prepared_ref(),
        }
    }
}

enum StreamState<'a> {
    /// Explicit-stack GSgrow DFS (plain or gap-constrained).
    LazyAll(StreamSource<'a>, LazyAll),
    /// Explicit-stack CloGSgrow DFS.
    LazyClosed(StreamSource<'a>, LazyClosed),
    /// Materialized result for configurations that need a global pass.
    Buffered(std::vec::IntoIter<MinedPattern>),
}

impl<'a> PatternStream<'a> {
    pub(crate) fn new(session: &'a MiningSession<'a>) -> Self {
        let request = session.request();
        let sequential = request.execution.effective_threads() <= 1;
        let lazy_mode = if request.is_ranked() || !sequential {
            None
        } else {
            match (request.base_mode(), request.constraints.is_unbounded()) {
                (Mode::All, _) => Some(Mode::All),
                (Mode::Closed, true) => Some(Mode::Closed),
                _ => None,
            }
        };

        let (state, truncated) = match lazy_mode {
            Some(mode) => {
                let source = StreamSource::new(session);
                let prepared = source.prepared_ref();
                let config = request.to_config();
                let min_sup = config.effective_min_sup();
                let events = prepared.parts.frequent_events(min_sup);
                let state = if mode == Mode::Closed {
                    let candidates = events
                        .iter()
                        .map(|&e| (e, prepared.parts.occurrence_counts[e.index()]))
                        .collect();
                    let machine = LazyClosed {
                        config,
                        min_sup,
                        events,
                        candidates,
                        next_seed: 0,
                        stack: Vec::new(),
                        sup_stack: Vec::new(),
                        pool: SetPool::new(),
                        scratch: CheckScratch::new(),
                    };
                    StreamState::LazyClosed(source, machine)
                } else {
                    let machine = LazyAll {
                        constraints: request.constraints,
                        config,
                        min_sup,
                        events,
                        next_seed: 0,
                        stack: Vec::new(),
                        pool: SetPool::new(),
                    };
                    StreamState::LazyAll(source, machine)
                };
                (state, false)
            }
            None => {
                let outcome = session.run();
                (
                    StreamState::Buffered(outcome.patterns.into_iter()),
                    outcome.truncated,
                )
            }
        };

        // The buffered path has already applied the gate inside `run()`;
        // only lazy streams filter here.
        let gated = matches!(
            state,
            StreamState::LazyAll(..) | StreamState::LazyClosed(..)
        );
        PatternStream {
            state,
            min_len: if gated { request.min_len } else { 0 },
            keep: request.keep_support_sets,
            cap: if gated { request.max_patterns } else { None },
            emitted: 0,
            truncated,
            done: false,
        }
    }

    /// How many patterns the stream has yielded so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// `true` when the stream stopped because `max_patterns` was reached
    /// (for materialized configurations: whether the underlying run was
    /// truncated).
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

impl Iterator for PatternStream<'_> {
    type Item = MinedPattern;

    fn next(&mut self) -> Option<MinedPattern> {
        if self.done {
            return None;
        }
        loop {
            let candidate = match &mut self.state {
                StreamState::LazyAll(source, lazy) => lazy.advance(source.prepared_ref()),
                StreamState::LazyClosed(source, lazy) => lazy.advance(source.prepared_ref()),
                StreamState::Buffered(iter) => {
                    let mined = iter.next();
                    if mined.is_none() {
                        self.done = true;
                    } else {
                        self.emitted += 1;
                    }
                    return mined;
                }
            };
            let Some((pattern, support)) = candidate else {
                self.done = true;
                return None;
            };
            if pattern.len() < self.min_len {
                continue;
            }
            let mut mined = MinedPattern::new(pattern, support.support());
            if self.keep {
                mined.support_set = Some(support);
            }
            self.emitted += 1;
            if self.cap.is_some_and(|c| self.emitted >= c) {
                self.truncated = true;
                self.done = true;
            }
            return Some(mined);
        }
    }
}

impl FusedIterator for PatternStream<'_> {}

impl std::fmt::Debug for PatternStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PatternStream")
            .field("emitted", &self.emitted)
            .field("truncated", &self.truncated)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

/// One node of the explicit-stack GSgrow DFS: the pattern, its leftmost
/// support set, and the next candidate extension event to try.
struct AllFrame {
    pattern: Pattern,
    support: SupportSet,
    next_child: usize,
}

/// Explicit-stack form of the GSgrow recursion (Algorithm 3), one emitted
/// pattern per [`LazyAll::advance`] call. Holds no references into the
/// prepared database, so the stream can own both.
struct LazyAll {
    constraints: GapConstraints,
    config: MiningConfig,
    min_sup: u64,
    events: Vec<EventId>,
    next_seed: usize,
    stack: Vec<AllFrame>,
    /// Recycles support sets across growth attempts and popped frames.
    pool: SetPool,
}

impl LazyAll {
    fn advance(&mut self, prepared: PreparedRef<'_>) -> Option<(Pattern, SupportSet)> {
        // With unbounded constraints the constrained growth degenerates to
        // exactly Algorithm 2, so one grower serves both dispatch arms.
        let csc = ConstrainedSupportComputer::with_support_computer(
            prepared.support_computer(),
            self.constraints,
        );
        loop {
            if self.stack.is_empty() {
                // Next seed subtree.
                let seed = loop {
                    if self.next_seed >= self.events.len() {
                        return None;
                    }
                    let event = self.events[self.next_seed];
                    self.next_seed += 1;
                    let support = csc.initial_support_set(event);
                    if support.support() >= self.min_sup {
                        break (event, support);
                    }
                };
                let (event, support) = seed;
                let pattern = Pattern::single(event);
                self.stack.push(AllFrame {
                    pattern: pattern.clone(),
                    support: support.clone(),
                    next_child: 0,
                });
                return Some((pattern, support));
            }

            let top = self.stack.last_mut().expect("non-empty stack");
            if !self.config.allows_growth(top.pattern.len()) {
                let frame = self.stack.pop().expect("non-empty stack");
                self.pool.give(frame.support);
                continue;
            }
            let mut next = None;
            while top.next_child < self.events.len() {
                let event = self.events[top.next_child];
                top.next_child += 1;
                let mut grown = self.pool.take();
                csc.instance_growth_into(&top.support, event, &mut grown);
                if grown.support() >= self.min_sup {
                    next = Some((top.pattern.grow(event), grown));
                    break;
                }
                self.pool.give(grown);
            }
            match next {
                Some((pattern, support)) => {
                    self.stack.push(AllFrame {
                        pattern: pattern.clone(),
                        support: support.clone(),
                        next_child: 0,
                    });
                    return Some((pattern, support));
                }
                None => {
                    let frame = self.stack.pop().expect("non-empty stack");
                    self.pool.give(frame.support);
                }
            }
        }
    }
}

/// One node of the explicit-stack CloGSgrow DFS: the pattern, its frequent
/// append children (computed at visit time for the closure verdict), and
/// the next child to descend into. The node's own support set lives on the
/// parallel `sup_stack` (the checker needs the whole prefix stack).
struct ClosedFrame {
    pattern: Pattern,
    children: Vec<(EventId, SupportSet)>,
    next_child: usize,
}

/// What visiting one closed-DFS node produced.
enum Visit {
    /// Subtree pruned by landmark border checking: nothing was pushed.
    Pruned,
    /// Node entered (frame pushed); `Some` when the pattern is closed and
    /// must be emitted.
    Entered(Option<(Pattern, SupportSet)>),
}

/// Explicit-stack form of the CloGSgrow recursion (Algorithm 4).
struct LazyClosed {
    config: MiningConfig,
    min_sup: u64,
    events: Vec<EventId>,
    /// `(event, total occurrences)` for the closure checker, precomputed so
    /// each step builds the checker in O(1).
    candidates: Vec<(EventId, u64)>,
    next_seed: usize,
    stack: Vec<ClosedFrame>,
    sup_stack: Vec<SupportSet>,
    /// Recycles support sets across growth attempts and popped frames.
    pool: SetPool,
    /// Ping/pong buffers for the closure check's extension growth.
    scratch: CheckScratch,
}

impl LazyClosed {
    fn advance(&mut self, prepared: PreparedRef<'_>) -> Option<(Pattern, SupportSet)> {
        let sc = prepared.support_computer();
        loop {
            if self.stack.is_empty() {
                let (event, support) = loop {
                    if self.next_seed >= self.events.len() {
                        return None;
                    }
                    let event = self.events[self.next_seed];
                    self.next_seed += 1;
                    let support = sc.initial_support_set(event);
                    if support.support() >= self.min_sup {
                        break (event, support);
                    }
                };
                match self.visit(&sc, Pattern::single(event), support) {
                    Visit::Pruned => continue,
                    Visit::Entered(Some(emit)) => return Some(emit),
                    Visit::Entered(None) => continue,
                }
            }

            let top = self.stack.last_mut().expect("non-empty stack");
            if !self.config.allows_growth(top.pattern.len()) || top.next_child >= top.children.len()
            {
                let frame = self.stack.pop().expect("non-empty stack");
                for (_, set) in frame.children.into_iter().skip(frame.next_child) {
                    self.pool.give(set);
                }
                if let Some(set) = self.sup_stack.pop() {
                    self.pool.give(set);
                }
                continue;
            }
            let (event, grown) = {
                let child = &mut top.children[top.next_child];
                top.next_child += 1;
                (child.0, std::mem::take(&mut child.1))
            };
            let pattern = top.pattern.grow(event);
            match self.visit(&sc, pattern, grown) {
                Visit::Pruned => continue,
                Visit::Entered(Some(emit)) => return Some(emit),
                Visit::Entered(None) => continue,
            }
        }
    }

    /// Visits one node: computes its append children, runs the combined
    /// closure / landmark-border check, and pushes the node's frame unless
    /// the subtree is pruned. Mirrors `CloGsGrow::mine` line for line.
    fn visit(
        &mut self,
        sc: &crate::growth::SupportComputer<'_>,
        pattern: Pattern,
        support: SupportSet,
    ) -> Visit {
        let checker = ClosureChecker::from_candidates(sc, &self.candidates);
        let sup = support.support();
        self.sup_stack.push(support);

        // Children are computed unconditionally: even at the length cap the
        // closure verdict needs `append_equal` (Theorem 4 covers append
        // extensions) — mirrors `CloGsGrow::mine`.
        let mut children: Vec<(EventId, SupportSet)> = Vec::new();
        let mut append_equal = false;
        for &event in &self.events {
            let mut grown = self.pool.take();
            sc.instance_growth_into(
                self.sup_stack.last().expect("support set"),
                event,
                usize::MAX,
                &mut grown,
            );
            if grown.support() == sup {
                append_equal = true;
            }
            if grown.support() >= self.min_sup {
                children.push((event, grown));
            } else {
                self.pool.give(grown);
            }
        }

        match checker.check(&pattern, &self.sup_stack, append_equal, &mut self.scratch) {
            ClosureStatus::Prune if self.config.use_landmark_pruning => {
                if let Some(set) = self.sup_stack.pop() {
                    self.pool.give(set);
                }
                for (_, set) in children {
                    self.pool.give(set);
                }
                Visit::Pruned
            }
            ClosureStatus::Prune | ClosureStatus::NonClosed => {
                self.stack.push(ClosedFrame {
                    pattern,
                    children,
                    next_child: 0,
                });
                Visit::Entered(None)
            }
            ClosureStatus::Closed => {
                let emit_support = self.sup_stack.last().expect("support set").clone();
                let emit = (pattern.clone(), emit_support);
                self.stack.push(ClosedFrame {
                    pattern,
                    children,
                    next_child: 0,
                });
                Visit::Entered(Some(emit))
            }
        }
    }
}
