//! Streaming pattern sinks: incremental consumption of mined patterns.
//!
//! The [`crate::Miner`] engine pushes every mined pattern through a
//! [`PatternSink`] instead of materializing the result into a `Vec` first.
//! Sinks return [`ControlFlow`]: `Continue(())` to keep mining,
//! `Break(())` to cancel the search cooperatively — the engine stops at the
//! next emission point and reports the run as cancelled.
//!
//! This is the memory-bounded consumption path for long DNA/log sequences:
//! a sink can stream patterns to disk, keep only aggregates, or abort the
//! run once enough patterns (or enough wall-clock time) have been spent.
//!
//! Provided adapters:
//!
//! * [`CollectSink`] — collects into a `Vec` (what [`crate::Miner::run`]
//!   uses internally),
//! * [`CountSink`] — counts patterns without storing them,
//! * [`BudgetSink`] — forwards at most `n` patterns, then cancels,
//! * [`DeadlineSink`] — cancels once a wall-clock deadline has passed.
//!
//! Closures work directly: any `FnMut(MinedPattern) -> ControlFlow<()>`
//! implements [`PatternSink`].

use std::ops::ControlFlow;
use std::time::Instant;

use crate::result::MinedPattern;

/// A consumer of mined patterns, fed incrementally during the search.
///
/// Returning `ControlFlow::Break(())` from [`PatternSink::accept`] cancels
/// the mining run cooperatively: the pattern passed to that call *has* been
/// consumed, and no further pattern will be emitted.
pub trait PatternSink {
    /// Consumes one mined pattern; `Break` cancels the run.
    fn accept(&mut self, pattern: MinedPattern) -> ControlFlow<()>;
}

impl<F> PatternSink for F
where
    F: FnMut(MinedPattern) -> ControlFlow<()>,
{
    fn accept(&mut self, pattern: MinedPattern) -> ControlFlow<()> {
        self(pattern)
    }
}

/// Collects every pattern into a vector.
#[derive(Debug, Default)]
pub struct CollectSink {
    patterns: Vec<MinedPattern>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The patterns collected so far.
    pub fn patterns(&self) -> &[MinedPattern] {
        &self.patterns
    }

    /// Consumes the collector, returning the patterns.
    pub fn into_patterns(self) -> Vec<MinedPattern> {
        self.patterns
    }
}

impl PatternSink for CollectSink {
    fn accept(&mut self, pattern: MinedPattern) -> ControlFlow<()> {
        self.patterns.push(pattern);
        ControlFlow::Continue(())
    }
}

/// Counts patterns (and tracks the best support seen) without storing them.
#[derive(Debug, Default)]
pub struct CountSink {
    /// Number of patterns consumed.
    pub count: usize,
    /// The largest support among the consumed patterns (0 when none).
    pub max_support: u64,
}

impl CountSink {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PatternSink for CountSink {
    fn accept(&mut self, pattern: MinedPattern) -> ControlFlow<()> {
        self.count += 1;
        self.max_support = self.max_support.max(pattern.support);
        ControlFlow::Continue(())
    }
}

/// Forwards at most `budget` patterns to the inner sink, then cancels the
/// run. The memory/output-bounding combinator for exploratory runs.
#[derive(Debug)]
pub struct BudgetSink<S> {
    inner: S,
    remaining: usize,
}

impl<S: PatternSink> BudgetSink<S> {
    /// Wraps `inner`, allowing at most `budget` patterns through.
    pub fn new(inner: S, budget: usize) -> Self {
        Self {
            inner,
            remaining: budget,
        }
    }

    /// The wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// How much of the budget is left.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl<S: PatternSink> PatternSink for BudgetSink<S> {
    fn accept(&mut self, pattern: MinedPattern) -> ControlFlow<()> {
        if self.remaining == 0 {
            return ControlFlow::Break(());
        }
        self.remaining -= 1;
        self.inner.accept(pattern)?;
        if self.remaining == 0 {
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    }
}

/// Cancels the run once a wall-clock deadline has passed. Patterns arriving
/// before the deadline are forwarded to the inner sink.
#[derive(Debug)]
pub struct DeadlineSink<S> {
    inner: S,
    deadline: Instant,
}

impl<S: PatternSink> DeadlineSink<S> {
    /// Wraps `inner` with an absolute deadline.
    pub fn new(inner: S, deadline: Instant) -> Self {
        Self { inner, deadline }
    }

    /// The wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PatternSink> PatternSink for DeadlineSink<S> {
    fn accept(&mut self, pattern: MinedPattern) -> ControlFlow<()> {
        if Instant::now() >= self.deadline {
            return ControlFlow::Break(());
        }
        self.inner.accept(pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use seqdb::EventId;
    use std::time::Duration;

    fn mined(support: u64) -> MinedPattern {
        MinedPattern::new(Pattern::single(EventId(0)), support)
    }

    #[test]
    fn collect_sink_accumulates() {
        let mut sink = CollectSink::new();
        assert!(sink.accept(mined(3)).is_continue());
        assert!(sink.accept(mined(5)).is_continue());
        assert_eq!(sink.patterns().len(), 2);
        assert_eq!(sink.into_patterns()[1].support, 5);
    }

    #[test]
    fn count_sink_tracks_count_and_max() {
        let mut sink = CountSink::new();
        for s in [2, 9, 4] {
            assert!(sink.accept(mined(s)).is_continue());
        }
        assert_eq!(sink.count, 3);
        assert_eq!(sink.max_support, 9);
    }

    #[test]
    fn budget_sink_breaks_after_budget() {
        let mut sink = BudgetSink::new(CollectSink::new(), 2);
        assert!(sink.accept(mined(1)).is_continue());
        assert!(sink.accept(mined(2)).is_break());
        assert!(sink.accept(mined(3)).is_break());
        assert_eq!(sink.remaining(), 0);
        assert_eq!(sink.into_inner().into_patterns().len(), 2);
    }

    #[test]
    fn deadline_sink_breaks_after_the_deadline() {
        let past = Instant::now() - Duration::from_millis(1);
        let mut expired = DeadlineSink::new(CollectSink::new(), past);
        assert!(expired.accept(mined(1)).is_break());
        assert!(expired.into_inner().into_patterns().is_empty());

        let future = Instant::now() + Duration::from_secs(3600);
        let mut open = DeadlineSink::new(CollectSink::new(), future);
        assert!(open.accept(mined(1)).is_continue());
        assert_eq!(open.into_inner().into_patterns().len(), 1);
    }

    #[test]
    fn closures_are_sinks() {
        let mut seen = 0u64;
        let mut sink = |p: MinedPattern| {
            seen += p.support;
            if seen > 5 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        };
        assert!(PatternSink::accept(&mut sink, mined(3)).is_continue());
        assert!(PatternSink::accept(&mut sink, mined(4)).is_break());
        assert_eq!(seen, 7);
    }
}
