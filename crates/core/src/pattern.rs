//! Patterns (gapped subsequences) and pattern-level utilities.
//!
//! A pattern `P = e1 e2 ... em` is an ordered list of events. Patterns are
//! grown event by event during mining (`P ◦ e`, Definition 3.3) and compared
//! by the sub-pattern relation (Definition 2.1) when checking closedness and
//! maximality.

use std::fmt;

use seqdb::{EventCatalog, EventId};

/// A pattern: a non-empty ordered list of events (gapped subsequence).
///
/// The empty pattern is representable (it is convenient as the DFS root) but
/// is never reported by the miners.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern {
    events: Vec<EventId>,
}

impl Pattern {
    /// Creates the empty pattern.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Creates a pattern from a vector of events.
    pub fn new(events: Vec<EventId>) -> Self {
        Self { events }
    }

    /// Creates a single-event pattern.
    pub fn single(event: EventId) -> Self {
        Self {
            events: vec![event],
        }
    }

    /// The events of the pattern.
    pub fn events(&self) -> &[EventId] {
        &self.events
    }

    /// The length `|P|` (number of events) of the pattern.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` for the empty pattern.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The pattern growth `P ◦ e` (Definition 3.3): `e` appended at the end.
    pub fn grow(&self, event: EventId) -> Pattern {
        let mut events = Vec::with_capacity(self.events.len() + 1);
        events.extend_from_slice(&self.events);
        events.push(event);
        Pattern { events }
    }

    /// The extension of this pattern with `event` inserted at `slot`
    /// (Definition 3.4): `slot = 0` prepends, `slot = len()` appends, and an
    /// interior slot inserts between two existing events.
    ///
    /// # Panics
    ///
    /// Panics if `slot > len()`.
    pub fn extend_at(&self, slot: usize, event: EventId) -> Pattern {
        assert!(slot <= self.events.len(), "slot out of range");
        let mut events = Vec::with_capacity(self.events.len() + 1);
        events.extend_from_slice(&self.events[..slot]);
        events.push(event);
        events.extend_from_slice(&self.events[slot..]);
        Pattern { events }
    }

    /// The prefix of the first `len` events.
    pub fn prefix(&self, len: usize) -> Pattern {
        Pattern {
            events: self.events[..len].to_vec(),
        }
    }

    /// Number of distinct events in the pattern (used by the density filter
    /// of the case-study post-processing).
    pub fn distinct_events(&self) -> usize {
        let mut seen: Vec<EventId> = self.events.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Returns `true` if `self` is a sub-pattern (gapped subsequence) of
    /// `other` (Definition 2.1).
    pub fn is_subpattern_of(&self, other: &Pattern) -> bool {
        if self.events.len() > other.events.len() {
            return false;
        }
        let mut j = 0;
        for &e in &other.events {
            if j < self.events.len() && e == self.events[j] {
                j += 1;
            }
        }
        j == self.events.len()
    }

    /// Returns `true` if `self` is a **proper** super-pattern of `other`.
    pub fn is_proper_superpattern_of(&self, other: &Pattern) -> bool {
        self.events.len() > other.events.len() && other.is_subpattern_of(self)
    }

    /// Renders the pattern using the labels of `catalog`, concatenated (the
    /// paper's notation for single-character events).
    pub fn render(&self, catalog: &EventCatalog) -> String {
        catalog.render(&self.events, "")
    }

    /// Renders the pattern using the labels of `catalog`, joined by `sep`.
    pub fn render_with(&self, catalog: &EventCatalog, sep: &str) -> String {
        catalog.render(&self.events, sep)
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<String> = self
            .events
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        write!(f, "[{}]", rendered.join(" "))
    }
}

impl From<Vec<EventId>> for Pattern {
    fn from(events: Vec<EventId>) -> Self {
        Pattern::new(events)
    }
}

impl FromIterator<EventId> for Pattern {
    fn from_iter<T: IntoIterator<Item = EventId>>(iter: T) -> Self {
        Pattern::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ids: &[u32]) -> Pattern {
        ids.iter().map(|&i| EventId(i)).collect()
    }

    #[test]
    fn grow_appends() {
        let ab = p(&[0, 1]);
        assert_eq!(ab.grow(EventId(2)), p(&[0, 1, 2]));
        assert_eq!(ab.len(), 2);
    }

    #[test]
    fn extend_at_covers_all_three_cases_of_definition_3_4() {
        let ab = p(&[0, 1]);
        // append
        assert_eq!(ab.extend_at(2, EventId(9)), p(&[0, 1, 9]));
        // interior insertion
        assert_eq!(ab.extend_at(1, EventId(9)), p(&[0, 9, 1]));
        // prepend
        assert_eq!(ab.extend_at(0, EventId(9)), p(&[9, 0, 1]));
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn extend_at_rejects_out_of_range_slot() {
        p(&[0]).extend_at(2, EventId(1));
    }

    #[test]
    fn subpattern_relation() {
        let ab = p(&[0, 1]);
        let acb = p(&[0, 2, 1]);
        let ba = p(&[1, 0]);
        assert!(ab.is_subpattern_of(&acb));
        assert!(!acb.is_subpattern_of(&ab));
        assert!(!ba.is_subpattern_of(&acb));
        assert!(Pattern::empty().is_subpattern_of(&ab));
        assert!(ab.is_subpattern_of(&ab));
        assert!(acb.is_proper_superpattern_of(&ab));
        assert!(!ab.is_proper_superpattern_of(&ab));
    }

    #[test]
    fn distinct_events_counts_unique_events() {
        assert_eq!(p(&[0, 1, 0, 2, 1]).distinct_events(), 3);
        assert_eq!(p(&[5, 5, 5]).distinct_events(), 1);
        assert_eq!(Pattern::empty().distinct_events(), 0);
    }

    #[test]
    fn prefix_returns_leading_events() {
        let abc = p(&[0, 1, 2]);
        assert_eq!(abc.prefix(0), Pattern::empty());
        assert_eq!(abc.prefix(2), p(&[0, 1]));
        assert_eq!(abc.prefix(3), abc);
    }

    #[test]
    fn render_uses_catalog_labels() {
        let catalog = EventCatalog::from_labels(["A", "B", "C"]);
        let acb = p(&[0, 2, 1]);
        assert_eq!(acb.render(&catalog), "ACB");
        assert_eq!(acb.render_with(&catalog, "-"), "A-C-B");
    }

    #[test]
    fn display_is_id_based() {
        assert_eq!(p(&[0, 2]).to_string(), "[e0 e2]");
    }
}
