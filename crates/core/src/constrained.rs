//! Gap-constrained repetitive mining (the paper's future-work direction).
//!
//! This module extends instance growth (Algorithm 2), `supComp`
//! (Algorithm 1), and the two miners to honour [`GapConstraints`]: bounds on
//! the gap between successive pattern events and on the total window an
//! instance may span. The concluding section of the paper names this
//! extension explicitly ("mining approximate repetitive patterns with gap
//! constraints, which is useful for mining subsequences from long sequences
//! of DNA, protein, and text data").
//!
//! # Semantics
//!
//! The *constrained repetitive support* `sup_C(P)` computed here is the size
//! of the instance set produced by constrained leftmost instance growth:
//! instances are extended greedily in right-shift order, and an extension is
//! admissible only if the new landmark position respects the `min_gap`,
//! `max_gap`, and `max_window` bounds relative to the instance being grown.
//!
//! Key properties (all exercised by the tests below):
//!
//! * With [`GapConstraints::unbounded`] every function of this module agrees
//!   exactly with the unconstrained algorithms (`sup_C = sup`).
//! * `sup_C` is **prefix anti-monotone**: dropping trailing events of a
//!   pattern never decreases the value, because every grown instance of
//!   `P ◦ e` extends an instance of `P`. This is what the depth-first search
//!   needs for completeness, so [`mine_all_constrained`] enumerates *every*
//!   pattern whose constrained support reaches `min_sup`.
//! * `sup_C` is **not** anti-monotone under arbitrary super-patterns: with a
//!   `max_gap`, inserting an event can *increase* the support (the classic
//!   example is contiguous matching, `max_gap = 0`, where `ABC` may occur
//!   often while `AC` never occurs contiguously). Consequently the landmark
//!   border pruning of Theorem 5 is not sound under constraints and
//!   [`mine_closed_constrained`] instead filters the complete frequent set —
//!   a pattern is reported iff no frequent super-pattern has the same
//!   constrained support.
//! * `sup_C(P) ≤ sup(P)`: constraining can only remove admissible instances.
//!
//! The greedy value is exactly the paper's maximum-non-overlapping count in
//! the unconstrained case (Lemma 4); under constraints it is the natural
//! operational extension of the same greedy and a lower bound on the true
//! maximum. [`crate::reference::max_non_overlapping_constrained`] provides a
//! brute-force exact maximum for small inputs, used by the property tests.
//!
//! Constrained growth shares the batched kernel path: per-instance
//! `min_gap`/`max_window` lower bounds are *gathered* into lane arrays and
//! folded with the leftmost-growth watermark, so the same 8-lane
//! [`seqdb::simd`] compare that drives unconstrained batches also advances
//! constrained lanes (the `max_gap` upper-bound check stays per-lane, after
//! the probe). `RGS_FORCE_SCALAR=1` pins this path to the scalar reference
//! kernels; the equivalence suite asserts bit-identical outcomes either way.

use std::ops::ControlFlow;

use seqdb::{EventId, SequenceDatabase};

use crate::config::MiningConfig;
use crate::constraints::GapConstraints;
use crate::engine::{Miner, Mode};
use crate::growth::{SetPool, SupportComputer};
use crate::instance::Landmark;
use crate::instbuf::InstanceBuffer;
use crate::kernel;
use crate::pattern::Pattern;
use crate::prepared::PreparedRef;
use crate::result::{MiningOutcome, MiningStats};
use crate::support::SupportSet;

/// A [`SupportComputer`] paired with gap/window constraints.
///
/// All queries on this type interpret supports as *constrained* repetitive
/// supports (`sup_C`, see the module documentation).
#[derive(Debug)]
pub struct ConstrainedSupportComputer<'a> {
    sc: SupportComputer<'a>,
    constraints: GapConstraints,
}

impl<'a> ConstrainedSupportComputer<'a> {
    /// Builds the inverted index for `db` and attaches `constraints`.
    pub fn new(db: &'a SequenceDatabase, constraints: GapConstraints) -> Self {
        Self {
            sc: SupportComputer::new(db),
            constraints,
        }
    }

    /// Attaches `constraints` to an existing support computer (no index is
    /// built — used to share a [`crate::PreparedDb`]'s index).
    pub fn with_support_computer(sc: SupportComputer<'a>, constraints: GapConstraints) -> Self {
        Self { sc, constraints }
    }

    /// The constraints this computer applies.
    pub fn constraints(&self) -> &GapConstraints {
        &self.constraints
    }

    /// The underlying unconstrained support computer.
    pub fn inner(&self) -> &SupportComputer<'a> {
        &self.sc
    }

    /// The constrained leftmost support set of the single-event pattern
    /// `event` (constraints never restrict single events).
    pub fn initial_support_set(&self, event: EventId) -> SupportSet {
        self.sc.initial_support_set(event)
    }

    /// Constrained instance growth: extends `support` (a constrained
    /// leftmost support set of some pattern `P`) into one of `P ◦ event`,
    /// admitting only extensions that satisfy the gap and window bounds.
    pub fn instance_growth(&self, support: &SupportSet, event: EventId) -> SupportSet {
        let mut grown = SupportSet::new();
        self.instance_growth_into(support, event, &mut grown);
        grown
    }

    /// [`Self::instance_growth`] writing into a caller-provided set whose
    /// allocation is reused (cleared first) — the hot-loop form, recycled
    /// through the miners' set pools.
    pub fn instance_growth_into(&self, support: &SupportSet, event: EventId, out: &mut SupportSet) {
        out.clear();
        // One fused constrained pass: each posting row is resolved once and
        // swept across the sequence's whole run — a window miss rejects
        // only the current instance (the cursor keeps the position for the
        // next one); row exhaustion ends the run.
        kernel::grow_constrained(
            self.sc.index(),
            event,
            &self.constraints,
            support.instances(),
            out,
        );
    }

    /// Constrained `supComp`: the constrained leftmost support set of an
    /// arbitrary pattern (double-buffered growth chain: two sets total,
    /// regardless of the pattern length).
    pub fn support_set(&self, pattern: &Pattern) -> SupportSet {
        let events = pattern.events();
        let Some((&first, rest)) = events.split_first() else {
            return SupportSet::new();
        };
        let mut support = self.initial_support_set(first);
        let mut spare = SupportSet::new();
        for &event in rest {
            if support.is_empty() {
                return support;
            }
            self.instance_growth_into(&support, event, &mut spare);
            std::mem::swap(&mut support, &mut spare);
        }
        support
    }

    /// The constrained repetitive support `sup_C(P)`.
    pub fn support(&self, pattern: &Pattern) -> u64 {
        self.support_set(pattern).support()
    }

    /// The full landmarks of the constrained leftmost support set, obtained
    /// by replaying the constrained greedy with complete position lists
    /// through the shared SoA [`InstanceBuffer`] — the same loop the
    /// unconstrained
    /// [`reconstruct_landmarks`](crate::SupportSet::reconstruct_landmarks)
    /// uses (unbounded constraints degenerate to Algorithm 2 exactly).
    pub fn support_landmarks(&self, pattern: &Pattern) -> Vec<Landmark> {
        let mut buffer = InstanceBuffer::new();
        buffer.reconstruct(self.sc.index(), pattern, &self.constraints);
        buffer.to_landmarks()
    }
}

/// Convenience wrapper: the constrained repetitive support of a pattern
/// given as raw event ids, building a temporary index.
pub fn constrained_support(
    db: &SequenceDatabase,
    pattern: &[EventId],
    constraints: GapConstraints,
) -> u64 {
    ConstrainedSupportComputer::new(db, constraints).support(&Pattern::new(pattern.to_vec()))
}

/// Mines **all** patterns whose constrained repetitive support reaches
/// `config.min_sup` under `constraints` (constrained GSgrow).
///
/// With [`GapConstraints::unbounded`] the result is identical to
/// [`crate::mine_all`].
#[deprecated(
    since = "0.2.0",
    note = "use `Miner::new(db).from_config(config).mode(Mode::All).constraints(constraints).run()`; \
            for repeated queries prepare once (`PreparedDb::new`) or open a \
            snapshot (`Miner::from_snapshot`) instead of re-indexing per call"
)]
pub fn mine_all_constrained(
    db: &SequenceDatabase,
    config: &MiningConfig,
    constraints: GapConstraints,
) -> MiningOutcome {
    Miner::new(db)
        .from_config(config)
        .mode(Mode::All)
        .constraints(constraints)
        .run()
}

/// Streaming constrained-GSgrow core: hands every constrained-frequent
/// pattern, with its constrained leftmost support set, to `emit`. The
/// search stops when `emit` returns [`ControlFlow::Break`]. Returns the
/// search statistics (elapsed time is the caller's responsibility).
pub(crate) fn mine_all_constrained_streaming(
    prepared: PreparedRef<'_>,
    config: &MiningConfig,
    constraints: GapConstraints,
    emit: &mut dyn FnMut(&Pattern, &SupportSet) -> ControlFlow<()>,
) -> MiningStats {
    let csc =
        ConstrainedSupportComputer::with_support_computer(prepared.support_computer(), constraints);
    let min_sup = config.effective_min_sup();
    let events = prepared.parts.frequent_events(min_sup);
    let mut stats = MiningStats::default();
    for &seed in &events {
        let initial = csc.initial_support_set(seed);
        let (seed_stats, flow) =
            mine_all_constrained_seed(&csc, config, min_sup, &events, seed, initial, emit);
        stats.merge(&seed_stats);
        if flow.is_break() {
            break;
        }
    }
    stats
}

/// Mines the constrained DFS subtree rooted at `seed` (one iteration of the
/// constrained miner's outer loop), starting from the caller-supplied
/// `initial` support set of the seed (constraints never restrict single
/// events). Subtrees of distinct seeds are independent, so per-seed
/// emissions concatenated in seed order reproduce the sequential stream
/// exactly.
pub(crate) fn mine_all_constrained_seed(
    csc: &ConstrainedSupportComputer<'_>,
    config: &MiningConfig,
    min_sup: u64,
    events: &[EventId],
    seed: EventId,
    initial: SupportSet,
    emit: &mut dyn FnMut(&Pattern, &SupportSet) -> ControlFlow<()>,
) -> (MiningStats, ControlFlow<()>) {
    let mut miner = ConstrainedMiner {
        csc,
        config,
        min_sup,
        frequent_events: events,
        stats: MiningStats::default(),
        stopped: false,
        pool: SetPool::new(),
        emit,
    };
    let support = initial;
    if support.support() >= min_sup {
        miner.mine(&Pattern::single(seed), support);
    }
    let flow = if miner.stopped {
        ControlFlow::Break(())
    } else {
        ControlFlow::Continue(())
    };
    (miner.stats, flow)
}

/// Mines the **closed** constrained-frequent patterns: the subset of
/// [`mine_all_constrained`]'s output with no frequent super-pattern of equal
/// constrained support.
///
/// Because constrained support is not anti-monotone under arbitrary
/// super-patterns (see the module documentation), the landmark border
/// pruning of Theorem 5 cannot be applied here; closedness is determined by
/// filtering the complete frequent set, which is sound because prefix
/// anti-monotonicity guarantees the frequent set is complete.
#[deprecated(
    since = "0.2.0",
    note = "use `Miner::new(db).from_config(config).mode(Mode::Closed).constraints(constraints).run()`; \
            for repeated queries prepare once (`PreparedDb::new`) or open a \
            snapshot (`Miner::from_snapshot`) instead of re-indexing per call"
)]
pub fn mine_closed_constrained(
    db: &SequenceDatabase,
    config: &MiningConfig,
    constraints: GapConstraints,
) -> MiningOutcome {
    Miner::new(db)
        .from_config(config)
        .mode(Mode::Closed)
        .constraints(constraints)
        .run()
}

struct ConstrainedMiner<'a, 'b, 'e> {
    csc: &'a ConstrainedSupportComputer<'b>,
    config: &'a MiningConfig,
    min_sup: u64,
    frequent_events: &'a [EventId],
    stats: MiningStats,
    stopped: bool,
    /// Recycles support sets across growth attempts (see
    /// [`crate::growth::SetPool`]).
    pool: SetPool,
    emit: &'e mut dyn FnMut(&Pattern, &SupportSet) -> ControlFlow<()>,
}

impl ConstrainedMiner<'_, '_, '_> {
    fn mine(&mut self, pattern: &Pattern, support: SupportSet) {
        self.stats.visited += 1;
        if (self.emit)(pattern, &support).is_break() {
            self.stopped = true;
        }
        if self.stopped || !self.config.allows_growth(pattern.len()) {
            self.pool.give(support);
            return;
        }
        let events = self.frequent_events;
        for &event in events {
            if self.stopped {
                break;
            }
            self.stats.instance_growths += 1;
            let mut grown = self.pool.take();
            self.csc.instance_growth_into(&support, event, &mut grown);
            if grown.support() >= self.min_sup {
                self.mine(&pattern.grow(event), grown);
            } else {
                self.pool.give(grown);
            }
        }
        self.pool.give(support);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::pattern_set;
    use crate::support::{are_valid_instances, is_non_redundant};

    /// Table III: S1 = ABCACBDDB, S2 = ACDBACADD.
    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    fn all_patterns(db: &SequenceDatabase, config: &MiningConfig) -> MiningOutcome {
        Miner::new(db).from_config(config).mode(Mode::All).run()
    }

    fn constrained_all(
        db: &SequenceDatabase,
        config: &MiningConfig,
        constraints: GapConstraints,
    ) -> MiningOutcome {
        Miner::new(db)
            .from_config(config)
            .mode(Mode::All)
            .constraints(constraints)
            .run()
    }

    fn constrained_closed(
        db: &SequenceDatabase,
        config: &MiningConfig,
        constraints: GapConstraints,
    ) -> MiningOutcome {
        Miner::new(db)
            .from_config(config)
            .mode(Mode::Closed)
            .constraints(constraints)
            .run()
    }

    fn pattern(db: &SequenceDatabase, s: &str) -> Pattern {
        Pattern::new(db.pattern_from_str(s).unwrap())
    }

    #[test]
    fn unbounded_constraints_reproduce_the_unconstrained_supports() {
        let db = running_example();
        let csc = ConstrainedSupportComputer::new(&db, GapConstraints::unbounded());
        let sc = SupportComputer::new(&db);
        for s in ["A", "AB", "AC", "ACB", "ACA", "AAD", "ACAD", "DD", "BD"] {
            let p = pattern(&db, s);
            assert_eq!(csc.support(&p), sc.support(&p), "pattern {s}");
            assert_eq!(csc.support_set(&p), sc.support_set(&p), "pattern {s}");
        }
    }

    #[test]
    fn max_gap_zero_requires_contiguous_instances() {
        // S1 = ABCACBDDB: contiguous AB occurs once (positions 1,2);
        // contiguous AC occurs once (4,5); DD occurs once (7,8).
        let db = running_example();
        let contiguous = GapConstraints::max_gap(0);
        assert_eq!(
            constrained_support(&db, &db.pattern_from_str("AB").unwrap(), contiguous),
            1
        );
        assert_eq!(
            constrained_support(&db, &db.pattern_from_str("DD").unwrap(), contiguous),
            2 // S1: (7,8); S2: (8,9)
        );
    }

    #[test]
    fn contiguous_ac_support_counts_every_adjacent_occurrence() {
        let db = running_example();
        let contiguous = GapConstraints::max_gap(0);
        let csc = ConstrainedSupportComputer::new(&db, contiguous);
        // S1 = ABCACBDDB: "AC" adjacent at positions (4,5) only.
        // S2 = ACDBACADD: "AC" adjacent at (1,2) and (5,6).
        assert_eq!(csc.support(&pattern(&db, "AC")), 3);
        let landmarks = csc.support_landmarks(&pattern(&db, "AC"));
        assert_eq!(
            landmarks,
            vec![
                Landmark::new(0, vec![4, 5]),
                Landmark::new(1, vec![1, 2]),
                Landmark::new(1, vec![5, 6]),
            ]
        );
        assert!(is_non_redundant(&landmarks));
        assert!(are_valid_instances(
            &db,
            &db.pattern_from_str("AC").unwrap(),
            &landmarks
        ));
        for l in &landmarks {
            assert!(contiguous.admits_landmark(&l.positions));
        }
    }

    #[test]
    fn max_window_limits_the_span_of_instances() {
        let db = running_example();
        // Unconstrained sup(ACB) = 3 with spans 6, 6, and 4.
        let acb = db.pattern_from_str("ACB").unwrap();
        assert_eq!(
            constrained_support(&db, &acb, GapConstraints::unbounded()),
            3
        );
        assert_eq!(
            constrained_support(&db, &acb, GapConstraints::max_window(6)),
            3
        );
        // A window of 4 admits only (1,<4,5,6>) in S1 (span 3) and
        // (2,<1,2,4>) in S2 (span 4).
        assert_eq!(
            constrained_support(&db, &acb, GapConstraints::max_window(4)),
            2
        );
        // A window of 2 cannot hold a 3-event pattern at all.
        assert_eq!(
            constrained_support(&db, &acb, GapConstraints::max_window(2)),
            0
        );
    }

    #[test]
    fn min_gap_excludes_adjacent_matches() {
        let db = SequenceDatabase::from_str_rows(&["ABAB"]);
        let ab = db.pattern_from_str("AB").unwrap();
        assert_eq!(
            constrained_support(&db, &ab, GapConstraints::unbounded()),
            2
        );
        // Requiring at least one event between A and B leaves only A@1,B@4.
        let spaced = GapConstraints::unbounded().with_min_gap(1);
        assert_eq!(constrained_support(&db, &ab, spaced), 1);
        // Requiring at least three events between them leaves nothing.
        let wide = GapConstraints::unbounded().with_min_gap(3);
        assert_eq!(constrained_support(&db, &ab, wide), 0);
    }

    #[test]
    fn constrained_support_never_exceeds_the_unconstrained_support() {
        let db = running_example();
        let sc = SupportComputer::new(&db);
        let cases = [
            GapConstraints::max_gap(0),
            GapConstraints::max_gap(1),
            GapConstraints::max_gap(3),
            GapConstraints::max_window(3),
            GapConstraints::max_window(5),
            GapConstraints::gap_range(1, 4),
        ];
        for s in ["AB", "AC", "ACB", "ACA", "AAD", "AD", "CD", "DD"] {
            let p = pattern(&db, s);
            let unconstrained = sc.support(&p);
            for c in cases {
                assert!(
                    constrained_support(&db, p.events(), c) <= unconstrained,
                    "pattern {s} under {}",
                    c.describe()
                );
            }
        }
    }

    #[test]
    fn prefix_anti_monotonicity_holds_under_constraints() {
        let db = running_example();
        let cases = [
            GapConstraints::max_gap(1),
            GapConstraints::max_window(5),
            GapConstraints::gap_range(1, 3),
        ];
        for c in cases {
            let csc = ConstrainedSupportComputer::new(&db, c);
            for s in ["ACB", "ACAD", "ABDD", "AAD"] {
                let p = pattern(&db, s);
                let mut prev = u64::MAX;
                for len in 1..=p.len() {
                    let sup = csc.support(&p.prefix(len));
                    assert!(
                        sup <= prev,
                        "constrained support must not increase along prefixes ({s}, {})",
                        c.describe()
                    );
                    prev = sup;
                }
            }
        }
    }

    #[test]
    fn constrained_miner_with_unbounded_constraints_equals_gsgrow() {
        let db = running_example();
        for min_sup in [2, 3] {
            let config = MiningConfig::new(min_sup);
            let plain = all_patterns(&db, &config);
            let constrained = constrained_all(&db, &config, GapConstraints::unbounded());
            assert_eq!(
                pattern_set(&plain.patterns),
                pattern_set(&constrained.patterns)
            );
        }
    }

    #[test]
    fn constrained_mining_is_complete_for_its_own_support() {
        // Every reported pattern has constrained support >= min_sup, and
        // every pattern found by unconstrained mining whose constrained
        // support reaches the threshold is reported.
        let db = running_example();
        let config = MiningConfig::new(2);
        let constraints = GapConstraints::max_gap(2);
        let mined = constrained_all(&db, &config, constraints);
        for mp in &mined.patterns {
            assert!(mp.support >= 2);
            assert_eq!(
                mp.support,
                constrained_support(&db, mp.pattern.events(), constraints)
            );
        }
        let unconstrained = all_patterns(&db, &MiningConfig::new(1));
        for mp in &unconstrained.patterns {
            let csup = constrained_support(&db, mp.pattern.events(), constraints);
            if csup >= 2 {
                assert!(
                    mined.contains(&mp.pattern),
                    "missing {:?} with constrained support {}",
                    mp.pattern,
                    csup
                );
            }
        }
    }

    #[test]
    fn closed_constrained_patterns_are_a_closed_subset() {
        let db = running_example();
        let config = MiningConfig::new(2);
        let constraints = GapConstraints::max_gap(3);
        let all = constrained_all(&db, &config, constraints);
        let closed = constrained_closed(&db, &config, constraints);
        assert!(!closed.is_empty());
        assert!(closed.len() <= all.len());
        // No closed pattern has a frequent super-pattern of equal support.
        for c in &closed.patterns {
            for other in &all.patterns {
                if other.pattern.is_proper_superpattern_of(&c.pattern) {
                    assert_ne!(
                        other.support, c.support,
                        "{:?} is not closed: {:?} has equal support",
                        c.pattern, other.pattern
                    );
                }
            }
        }
        // Every frequent pattern has a closed super-pattern (or itself) with
        // the same support in the closed result.
        for mp in &all.patterns {
            assert!(
                closed.patterns.iter().any(|c| c.support == mp.support
                    && (c.pattern == mp.pattern
                        || c.pattern.is_proper_superpattern_of(&mp.pattern))),
                "no closed representative for {:?}",
                mp.pattern
            );
        }
    }

    #[test]
    fn max_gap_can_make_a_super_pattern_more_frequent_than_its_sub_pattern() {
        // Documents why Theorem 5 pruning is unsound under constraints:
        // with contiguous matching, ABC occurs while AC does not.
        let db = SequenceDatabase::from_str_rows(&["ABCABC"]);
        let contiguous = GapConstraints::max_gap(0);
        let ac = db.pattern_from_str("AC").unwrap();
        let abc = db.pattern_from_str("ABC").unwrap();
        assert_eq!(constrained_support(&db, &ac, contiguous), 0);
        assert_eq!(constrained_support(&db, &abc, contiguous), 2);
    }

    #[test]
    fn empty_database_and_empty_pattern_edge_cases() {
        let db = SequenceDatabase::new();
        let outcome = constrained_all(&db, &MiningConfig::new(1), GapConstraints::max_gap(1));
        assert!(outcome.is_empty());
        let db2 = running_example();
        let csc = ConstrainedSupportComputer::new(&db2, GapConstraints::max_gap(1));
        assert_eq!(csc.support(&Pattern::empty()), 0);
        assert!(csc.support_landmarks(&Pattern::empty()).is_empty());
    }

    #[test]
    fn truncation_and_length_caps_are_respected() {
        let db = running_example();
        let config = MiningConfig::new(1)
            .with_max_patterns(4)
            .with_support_sets();
        let mined = constrained_all(&db, &config, GapConstraints::max_gap(2));
        assert!(mined.truncated);
        assert_eq!(mined.len(), 4);
        for mp in &mined.patterns {
            assert!(mp.support_set.is_some());
        }
        let capped = MiningConfig::new(1).with_max_pattern_length(2);
        let short = constrained_all(&db, &capped, GapConstraints::max_gap(2));
        assert!(short.max_pattern_length() <= 2);
    }
}
