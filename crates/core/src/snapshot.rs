//! Prepared-database snapshots: what goes into the single-file image and
//! how it comes back out with zero copies.
//!
//! The format layer — header, section table, checksum, `mmap` — lives in
//! [`seqdb::snapshot`]; this module is the *composition*. A format v3 image
//! (what this build writes) holds the global sections plus one section
//! triple per shard:
//!
//! | section | contents |
//! |---|---|
//! | `meta` | `[num_sequences, num_events, total_length]` as `u64`s |
//! | `store.events` | the flat [`seqdb::SeqStore`] event arena (global), at its narrowest width |
//! | `store.offsets` | the store's CSR offsets (per sequence + sentinel) |
//! | `catalog` | the interned event labels, length-prefixed UTF-8 |
//! | `event.counts` | per-event total occurrence counts (`u64`) |
//! | `event.order` | the frequency-pruned candidate event order |
//! | `shard.table` | the [`seqdb::ShardMap`] boundaries (`u64`, shards + 1) |
//! | `shard.store.offsets` ×N | shard `k`'s local CSR offsets (rebased to 0) |
//! | `shard.index.offsets` ×N | shard `k`'s index CSR ranges |
//! | `shard.index.positions` ×N | shard `k`'s flat positions arena |
//!
//! A shard's event window is **not** duplicated: it is a zero-copy
//! [`seqdb::SharedSlice`] window of `store.events`, delimited by the shard
//! table and the global offsets — so one mapped file can hand every process
//! (or, later, every node) its shard subset without copying. Format v1
//! images (a single global `index.offsets`/`index.positions` pair, no
//! shard table) still open, as one shard.
//!
//! The `store.events` section is written **narrowest-fit** (format v3):
//! when every event id fits `u16` the arena is serialized at 2 bytes per
//! element and mapped back as an [`seqdb::EventColumn::Narrow`] column —
//! half the on-disk and resident event bytes. Larger alphabets stay at 4
//! bytes. Opening dispatches on the section's recorded element size, so
//! wide v1/v2 images (and wide v3 images) keep opening unchanged.
//!
//! Opening reconstructs every array as a [`seqdb::SharedSlice`] borrowing
//! the mapped image and cross-checks the sections (dimensions against
//! `meta`, the shard table against the store, catalog length against
//! `num_events`, event-order ids against the alphabet), so a reopened
//! snapshot upholds the same invariants as one built by
//! [`PreparedDb::new`]. The only owned reconstructions are the catalog
//! (label strings want owned storage) and interior shards' local offset
//! rebasing checks — both tiny next to the arenas.
//!
//! Entry points: [`PreparedDb::write_snapshot`],
//! [`PreparedDb::open_snapshot`], and
//! [`Miner::from_snapshot`](crate::Miner::from_snapshot). See
//! `ARCHITECTURE.md` at the repository root for the byte-level
//! walk-through.

use std::path::Path;

use seqdb::snapshot::{
    catalog_from_bytes, catalog_to_bytes, corrupt, section_id, SectionPayload, SnapshotImage,
    SnapshotWriter,
};
use seqdb::{
    EventColumn, EventWidth, InvertedIndex, SeqStore, SequenceDatabase, ShardMap, ShardedIndex,
    ShardedSeqStore, SnapshotError,
};

use crate::prepared::{ImageInfo, PreparedDb, PreparedParts};

/// Serializes `prepared` to `path` in one pass (format v3); returns bytes
/// written.
pub(crate) fn write_prepared(prepared: &PreparedDb, path: &Path) -> Result<u64, SnapshotError> {
    let db = prepared.database();
    let index = prepared.index();
    let store_shards = prepared.store_shards();
    let meta = [
        db.num_sequences() as u64,
        db.num_events() as u64,
        db.total_length() as u64,
    ];
    let catalog_bytes = catalog_to_bytes(db.catalog());
    let shard_table: Vec<u64> = store_shards
        .map()
        .bounds()
        .iter()
        .map(|&b| u64::from(b))
        .collect();
    let parts = prepared.parts();

    // Narrowest-fit event column: an already-narrow column serializes its
    // u16 arena as-is; a wide column whose ids all fit u16 (e.g. one mapped
    // from a pre-v3 wide image) is re-narrowed for the new image; only a
    // genuinely large alphabet stays at 4 bytes per event.
    let column = db.store().event_column();
    let renarrowed: Option<Vec<u16>> = if column.is_narrow() {
        None
    } else {
        column.iter().map(u16::from_event).collect()
    };
    let events_payload = match renarrowed.as_deref().or_else(|| column.narrow_slice()) {
        Some(narrow) => SectionPayload::U16s(narrow),
        None => SectionPayload::EventIds(column.wide_slice().unwrap_or(&[])),
    };

    let mut writer = SnapshotWriter::new();
    writer
        .section(section_id::META, SectionPayload::U64s(&meta))
        .section(section_id::STORE_EVENTS, events_payload)
        .section(
            section_id::STORE_OFFSETS,
            SectionPayload::U32s(db.store().offsets()),
        )
        .section(section_id::CATALOG, SectionPayload::Bytes(&catalog_bytes))
        .section(
            section_id::EVENT_COUNTS,
            SectionPayload::U64s(&parts.occurrence_counts),
        )
        .section(
            section_id::EVENT_ORDER,
            SectionPayload::EventIds(&parts.event_order),
        )
        .section(section_id::SHARD_TABLE, SectionPayload::U64s(&shard_table));
    for k in 0..store_shards.num_shards() {
        let shard_store = store_shards.shard(k);
        let shard_index = index.shard(k);
        writer
            .section(
                section_id::shard_store_offsets(k as u32),
                SectionPayload::U32s(shard_store.offsets()),
            )
            .section(
                section_id::shard_index_offsets(k as u32),
                SectionPayload::U32s(shard_index.offsets()),
            )
            .section(
                section_id::shard_index_positions(k as u32),
                SectionPayload::U32s(shard_index.positions()),
            );
    }
    writer.write_to_path(path)
}

/// Opens and cross-validates an image (format v1, v2 or v3), reconstructing
/// every arena as a zero-copy slice over it.
pub(crate) fn open_prepared(path: &Path) -> Result<PreparedDb, SnapshotError> {
    let image = std::sync::Arc::new(SnapshotImage::open(path)?);

    let meta = image.u64s(section_id::META)?;
    let [num_sequences, num_events, total_length] = *meta else {
        return Err(corrupt(format!(
            "meta section holds {} values, expected 3",
            meta.len()
        )));
    };
    let (num_sequences, num_events, total_length) = (
        usize::try_from(num_sequences).map_err(|_| corrupt("sequence count overflows usize"))?,
        usize::try_from(num_events).map_err(|_| corrupt("event count overflows usize"))?,
        usize::try_from(total_length).map_err(|_| corrupt("total length overflows usize"))?,
    );

    let catalog = catalog_from_bytes(image.section_bytes(section_id::CATALOG)?)?;
    if catalog.len() != num_events {
        return Err(corrupt(format!(
            "catalog holds {} labels but meta records {num_events} events",
            catalog.len()
        )));
    }

    // Width dispatch: the section table records the element size the arena
    // was written at — 2 maps back narrow, 4 maps back wide.
    let narrow_events = image
        .section(section_id::STORE_EVENTS)
        .is_some_and(|entry| entry.elem_size == 2);
    let events = if narrow_events {
        EventColumn::Narrow(image.shared_u16s(section_id::STORE_EVENTS)?)
    } else {
        EventColumn::Wide(image.shared_event_ids(section_id::STORE_EVENTS)?)
    };
    let store = SeqStore::from_shared_parts(events, image.shared_u32s(section_id::STORE_OFFSETS)?)
        .map_err(corrupt)?;
    if store.num_sequences() != num_sequences || store.total_length() != total_length {
        return Err(corrupt(format!(
            "store holds {} sequences / {} events but meta records \
             {num_sequences} / {total_length}",
            store.num_sequences(),
            store.total_length()
        )));
    }
    if store.event_column().iter().any(|e| e.index() >= num_events) {
        return Err(corrupt(
            "store arena references an event id outside the catalog",
        ));
    }

    let (store_shards, index) = if image.version() >= 2 {
        open_shards(&image, &store, num_sequences, num_events, total_length)?
    } else {
        open_v1_single_shard(&image, &store, num_sequences, num_events, total_length)?
    };

    let occurrence_counts = image.shared_u64s(section_id::EVENT_COUNTS)?;
    if occurrence_counts.len() != num_events {
        return Err(corrupt(format!(
            "event counts hold {} entries but meta records {num_events} events",
            occurrence_counts.len()
        )));
    }

    let event_order = image.shared_event_ids(section_id::EVENT_ORDER)?;
    if event_order.iter().any(|e| e.index() >= num_events) {
        return Err(corrupt(
            "event order references an event id outside the catalog",
        ));
    }

    let db = SequenceDatabase::from_store(catalog, store);
    let parts = PreparedParts {
        index,
        occurrence_counts,
        event_order,
    };
    let info = ImageInfo {
        checksum: image.checksum(),
        version: image.version(),
    };
    Ok(PreparedDb::from_parts(db, store_shards, parts, Some(info)))
}

/// Format v1: a single global index pair and no shard table — reconstructed
/// as one shard whose window spans the whole store.
fn open_v1_single_shard(
    image: &std::sync::Arc<SnapshotImage>,
    store: &SeqStore,
    num_sequences: usize,
    num_events: usize,
    total_length: usize,
) -> Result<(ShardedSeqStore, ShardedIndex), SnapshotError> {
    let index = InvertedIndex::from_shared_parts(
        image.shared_u32s(section_id::INDEX_OFFSETS)?,
        image.shared_u32s(section_id::INDEX_POSITIONS)?,
        num_sequences,
        num_events,
    )
    .map_err(corrupt)?;
    if index.positions().len() != total_length {
        return Err(corrupt(format!(
            "index positions arena holds {} entries but meta records {total_length}",
            index.positions().len()
        )));
    }
    // The image-backed store columns are shared, so the full-range window
    // is zero-copy.
    let store_shards =
        ShardedSeqStore::from_store_with_map(store.clone(), ShardMap::single(num_sequences));
    Ok((store_shards, ShardedIndex::single(index)))
}

/// Format v2: shard table plus one (store offsets, index offsets, index
/// positions) section triple per shard. Event windows are zero-copy slices
/// of the global arena.
fn open_shards(
    image: &std::sync::Arc<SnapshotImage>,
    store: &SeqStore,
    num_sequences: usize,
    num_events: usize,
    total_length: usize,
) -> Result<(ShardedSeqStore, ShardedIndex), SnapshotError> {
    let table = image.u64s(section_id::SHARD_TABLE)?;
    let bounds: Vec<u32> = table
        .iter()
        .map(|&b| u32::try_from(b).map_err(|_| corrupt(format!("shard boundary {b} overflows"))))
        .collect::<Result<_, _>>()?;
    let map = ShardMap::from_bounds(bounds, num_sequences).map_err(corrupt)?;

    // Shard event windows slice the (already width-dispatched) global
    // column; the mapped backing makes them zero-copy at either width.
    let global_events = store.event_column();
    let global_offsets = store.offsets();
    let mut shard_stores = Vec::with_capacity(map.num_shards());
    let mut shard_indexes = Vec::with_capacity(map.num_shards());
    let mut positions_total = 0usize;
    for k in 0..map.num_shards() {
        let range = map.range(k);
        let event_range = global_offsets[range.start] as usize..global_offsets[range.end] as usize;
        let shard_store = SeqStore::from_shared_parts(
            global_events.window(event_range),
            image.shared_u32s(section_id::shard_store_offsets(k as u32))?,
        )
        .map_err(|detail| corrupt(format!("shard {k}: {detail}")))?;
        let shard_index = InvertedIndex::from_shared_parts(
            image.shared_u32s(section_id::shard_index_offsets(k as u32))?,
            image.shared_u32s(section_id::shard_index_positions(k as u32))?,
            range.len(),
            num_events,
        )
        .map_err(|detail| corrupt(format!("shard {k}: {detail}")))?;
        positions_total += shard_index.positions().len();
        shard_stores.push(shard_store);
        shard_indexes.push(shard_index);
    }
    if positions_total != total_length {
        return Err(corrupt(format!(
            "shard index positions hold {positions_total} entries in total but meta \
             records {total_length}"
        )));
    }
    let store_shards =
        ShardedSeqStore::from_parts(store.clone(), shard_stores, map.clone()).map_err(corrupt)?;
    let index = ShardedIndex::from_parts(shard_indexes, map, num_events).map_err(corrupt)?;
    Ok((store_shards, index))
}

#[cfg(test)]
mod tests {
    use crate::{Miner, Mode, PreparedDb};
    use seqdb::snapshot::{section_id, SectionPayload, SnapshotImage, SnapshotWriter};
    use seqdb::SequenceDatabase;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rgs-core-snap-{}-{tag}.bin", std::process::id()))
    }

    #[test]
    fn write_open_round_trip_restores_the_snapshot() {
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let prepared = PreparedDb::new(&db);
        let path = temp_path("roundtrip");
        let bytes = prepared.write_snapshot(&path).expect("write");
        assert!(bytes as usize >= prepared.heap_bytes());

        let reopened = PreparedDb::open_snapshot(&path).expect("open");
        assert_eq!(reopened, prepared);
        assert_eq!(reopened.heap_bytes(), prepared.heap_bytes());
        let fresh = prepared.miner().min_sup(2).mode(Mode::Closed).run();
        let cold = reopened.miner().min_sup(2).mode(Mode::Closed).run();
        assert_eq!(fresh.patterns, cold.patterns);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_snapshot_round_trips_with_every_shard_intact() {
        let db =
            SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD", "AAAA", "BCBC", "DDDD"]);
        for shards in [2, 3] {
            let prepared = PreparedDb::new_sharded(&db, shards, 1);
            let path = temp_path(&format!("sharded-{shards}"));
            prepared.write_snapshot(&path).expect("write");
            let reopened = PreparedDb::open_snapshot(&path).expect("open");
            assert_eq!(reopened, prepared);
            assert_eq!(reopened.shard_count(), shards);
            assert_eq!(reopened.shard_footprints(), prepared.shard_footprints());
            let fresh = prepared.miner().min_sup(2).mode(Mode::Closed).run();
            let cold = reopened.miner().min_sup(2).mode(Mode::Closed).run();
            assert_eq!(fresh.patterns, cold.patterns);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn v1_images_still_open_as_a_single_shard() {
        // Hand-compose a version-1 image: the old eight-section layout with
        // one global index pair and no shard table.
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let index = db.inverted_index();
        let counts = index.total_counts();
        let order: Vec<seqdb::EventId> = db
            .catalog()
            .ids()
            .filter(|e| counts[e.index()] > 0)
            .collect();
        let meta = [
            db.num_sequences() as u64,
            db.num_events() as u64,
            db.total_length() as u64,
        ];
        let catalog_bytes = seqdb::snapshot::catalog_to_bytes(db.catalog());
        // v1 images only ever carried wide arenas.
        let wide_events = db.store().event_column().to_wide_vec();
        let path = temp_path("v1-compat");
        let mut writer = SnapshotWriter::new().with_version(1);
        writer
            .section(section_id::META, SectionPayload::U64s(&meta))
            .section(
                section_id::STORE_EVENTS,
                SectionPayload::EventIds(&wide_events),
            )
            .section(
                section_id::STORE_OFFSETS,
                SectionPayload::U32s(db.store().offsets()),
            )
            .section(
                section_id::INDEX_OFFSETS,
                SectionPayload::U32s(index.offsets()),
            )
            .section(
                section_id::INDEX_POSITIONS,
                SectionPayload::U32s(index.positions()),
            )
            .section(section_id::CATALOG, SectionPayload::Bytes(&catalog_bytes))
            .section(section_id::EVENT_COUNTS, SectionPayload::U64s(&counts))
            .section(section_id::EVENT_ORDER, SectionPayload::EventIds(&order));
        writer.write_to_path(&path).expect("write v1");
        assert_eq!(SnapshotImage::open(&path).expect("open image").version(), 1);

        let reopened = PreparedDb::open_snapshot(&path).expect("open v1");
        assert_eq!(reopened.shard_count(), 1);
        let fresh = PreparedDb::new(&db);
        for mode in [Mode::All, Mode::Closed, Mode::Maximal, Mode::TopK] {
            assert_eq!(
                reopened.miner().min_sup(2).mode(mode).run().patterns,
                fresh.miner().min_sup(2).mode(mode).run().patterns,
                "{mode:?} diverges on a v1 image"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn image_provenance_is_exposed_on_reopen_and_absent_on_heap_builds() {
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let prepared = PreparedDb::new(&db);
        assert_eq!(prepared.image_checksum(), None);
        assert_eq!(prepared.image_version(), None);

        let path = temp_path("provenance");
        prepared.write_snapshot(&path).expect("write");
        let image = SnapshotImage::open(&path).expect("open image");
        let reopened = PreparedDb::open_snapshot(&path).expect("open");
        assert_eq!(reopened.image_checksum(), Some(image.checksum()));
        assert_eq!(reopened.image_version(), Some(image.version()));
        // Provenance is identity, not content: reopen still equals the
        // heap build, and resharding the mapped corpus keeps the identity.
        assert_eq!(reopened, prepared);
        assert_eq!(
            reopened.reshard(2, 1).image_checksum(),
            Some(image.checksum())
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_database_round_trips() {
        let prepared = PreparedDb::new(&SequenceDatabase::new());
        let path = temp_path("empty");
        prepared.write_snapshot(&path).expect("write");
        let reopened = PreparedDb::open_snapshot(&path).expect("open");
        assert_eq!(reopened, prepared);
        assert!(reopened.miner().min_sup(1).run().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn miner_from_snapshot_runs_queries() {
        let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
        let prepared = PreparedDb::new(&db);
        let path = temp_path("miner");
        prepared.write_snapshot(&path).expect("write");
        let outcome = Miner::from_snapshot(&path)
            .expect("open")
            .min_sup(2)
            .mode(Mode::All)
            .run();
        let expected = prepared.miner().min_sup(2).mode(Mode::All).run();
        assert_eq!(outcome.patterns, expected.patterns);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn opening_a_missing_file_is_an_io_error() {
        let err = PreparedDb::open_snapshot(temp_path("never-written")).unwrap_err();
        assert!(matches!(err, seqdb::SnapshotError::Io(_)), "{err}");
    }
}
