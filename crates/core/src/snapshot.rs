//! Prepared-database snapshots: what goes into the single-file image and
//! how it comes back out with zero copies.
//!
//! The format layer — header, section table, checksum, `mmap` — lives in
//! [`seqdb::snapshot`]; this module is the *composition*: it knows that a
//! [`PreparedDb`] is exactly eight sections and how to validate them
//! against each other when reopening:
//!
//! | section | contents |
//! |---|---|
//! | `meta` | `[num_sequences, num_events, total_length]` as `u64`s |
//! | `store.events` | the flat [`seqdb::SeqStore`] event arena |
//! | `store.offsets` | the store's CSR offsets (per sequence + sentinel) |
//! | `index.offsets` | the [`seqdb::InvertedIndex`] per-`(seq, event)` CSR ranges |
//! | `index.positions` | the index's flat positions arena |
//! | `catalog` | the interned event labels, length-prefixed UTF-8 |
//! | `event.counts` | per-event total occurrence counts (`u64`) |
//! | `event.order` | the frequency-pruned candidate event order |
//!
//! Opening reconstructs every array as a [`seqdb::SharedSlice`] borrowing
//! the mapped image — no arena is copied — and then cross-checks the
//! sections (dimensions against `meta`, catalog length against
//! `num_events`, event-order ids against the alphabet), so a reopened
//! snapshot upholds the same invariants as one built by
//! [`PreparedDb::new`]. The only owned reconstruction is the catalog,
//! whose label strings and lookup map want owned storage and are tiny next
//! to the arenas.
//!
//! Entry points: [`PreparedDb::write_snapshot`],
//! [`PreparedDb::open_snapshot`], and
//! [`Miner::from_snapshot`](crate::Miner::from_snapshot). See
//! `ARCHITECTURE.md` at the repository root for the byte-level
//! walk-through.

use std::path::Path;

use seqdb::snapshot::{
    catalog_from_bytes, catalog_to_bytes, corrupt, section_id, SectionPayload, SnapshotImage,
    SnapshotWriter,
};
use seqdb::{SeqStore, SequenceDatabase, SnapshotError};

use crate::prepared::{PreparedDb, PreparedParts};

/// Serializes `prepared` to `path` in one pass; returns bytes written.
pub(crate) fn write_prepared(prepared: &PreparedDb, path: &Path) -> Result<u64, SnapshotError> {
    let db = prepared.database();
    let index = prepared.index();
    let meta = [
        db.num_sequences() as u64,
        db.num_events() as u64,
        db.total_length() as u64,
    ];
    let catalog_bytes = catalog_to_bytes(db.catalog());
    let parts = prepared.parts();

    let mut writer = SnapshotWriter::new();
    writer
        .section(section_id::META, SectionPayload::U64s(&meta))
        .section(
            section_id::STORE_EVENTS,
            SectionPayload::EventIds(db.store().arena()),
        )
        .section(
            section_id::STORE_OFFSETS,
            SectionPayload::U32s(db.store().offsets()),
        )
        .section(
            section_id::INDEX_OFFSETS,
            SectionPayload::U32s(index.offsets()),
        )
        .section(
            section_id::INDEX_POSITIONS,
            SectionPayload::U32s(index.positions()),
        )
        .section(section_id::CATALOG, SectionPayload::Bytes(&catalog_bytes))
        .section(
            section_id::EVENT_COUNTS,
            SectionPayload::U64s(&parts.occurrence_counts),
        )
        .section(
            section_id::EVENT_ORDER,
            SectionPayload::EventIds(&parts.event_order),
        );
    writer.write_to_path(path)
}

/// Opens and cross-validates an image, reconstructing every arena as a
/// zero-copy slice over it.
pub(crate) fn open_prepared(path: &Path) -> Result<PreparedDb, SnapshotError> {
    let image = std::sync::Arc::new(SnapshotImage::open(path)?);

    let meta = image.u64s(section_id::META)?;
    let [num_sequences, num_events, total_length] = *meta else {
        return Err(corrupt(format!(
            "meta section holds {} values, expected 3",
            meta.len()
        )));
    };
    let (num_sequences, num_events, total_length) = (
        usize::try_from(num_sequences).map_err(|_| corrupt("sequence count overflows usize"))?,
        usize::try_from(num_events).map_err(|_| corrupt("event count overflows usize"))?,
        usize::try_from(total_length).map_err(|_| corrupt("total length overflows usize"))?,
    );

    let catalog = catalog_from_bytes(image.section_bytes(section_id::CATALOG)?)?;
    if catalog.len() != num_events {
        return Err(corrupt(format!(
            "catalog holds {} labels but meta records {num_events} events",
            catalog.len()
        )));
    }

    let store = SeqStore::from_shared_parts(
        image.shared_event_ids(section_id::STORE_EVENTS)?,
        image.shared_u32s(section_id::STORE_OFFSETS)?,
    )
    .map_err(corrupt)?;
    if store.num_sequences() != num_sequences || store.total_length() != total_length {
        return Err(corrupt(format!(
            "store holds {} sequences / {} events but meta records \
             {num_sequences} / {total_length}",
            store.num_sequences(),
            store.total_length()
        )));
    }
    if store.arena().iter().any(|e| e.index() >= num_events) {
        return Err(corrupt(
            "store arena references an event id outside the catalog",
        ));
    }

    let index = seqdb::InvertedIndex::from_shared_parts(
        image.shared_u32s(section_id::INDEX_OFFSETS)?,
        image.shared_u32s(section_id::INDEX_POSITIONS)?,
        num_sequences,
        num_events,
    )
    .map_err(corrupt)?;
    if index.positions().len() != total_length {
        return Err(corrupt(format!(
            "index positions arena holds {} entries but meta records {total_length}",
            index.positions().len()
        )));
    }

    let occurrence_counts = image.shared_u64s(section_id::EVENT_COUNTS)?;
    if occurrence_counts.len() != num_events {
        return Err(corrupt(format!(
            "event counts hold {} entries but meta records {num_events} events",
            occurrence_counts.len()
        )));
    }

    let event_order = image.shared_event_ids(section_id::EVENT_ORDER)?;
    if event_order.iter().any(|e| e.index() >= num_events) {
        return Err(corrupt(
            "event order references an event id outside the catalog",
        ));
    }

    let db = SequenceDatabase::from_store(catalog, store);
    let parts = PreparedParts {
        index,
        occurrence_counts,
        event_order,
    };
    Ok(PreparedDb::from_parts(db, parts))
}

#[cfg(test)]
mod tests {
    use crate::{Miner, Mode, PreparedDb};
    use seqdb::SequenceDatabase;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rgs-core-snap-{}-{tag}.bin", std::process::id()))
    }

    #[test]
    fn write_open_round_trip_restores_the_snapshot() {
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let prepared = PreparedDb::new(&db);
        let path = temp_path("roundtrip");
        let bytes = prepared.write_snapshot(&path).expect("write");
        assert!(bytes as usize >= prepared.heap_bytes());

        let reopened = PreparedDb::open_snapshot(&path).expect("open");
        assert_eq!(reopened, prepared);
        assert_eq!(reopened.heap_bytes(), prepared.heap_bytes());
        let fresh = prepared.miner().min_sup(2).mode(Mode::Closed).run();
        let cold = reopened.miner().min_sup(2).mode(Mode::Closed).run();
        assert_eq!(fresh.patterns, cold.patterns);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_database_round_trips() {
        let prepared = PreparedDb::new(&SequenceDatabase::new());
        let path = temp_path("empty");
        prepared.write_snapshot(&path).expect("write");
        let reopened = PreparedDb::open_snapshot(&path).expect("open");
        assert_eq!(reopened, prepared);
        assert!(reopened.miner().min_sup(1).run().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn miner_from_snapshot_runs_queries() {
        let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
        let prepared = PreparedDb::new(&db);
        let path = temp_path("miner");
        prepared.write_snapshot(&path).expect("write");
        let outcome = Miner::from_snapshot(&path)
            .expect("open")
            .min_sup(2)
            .mode(Mode::All)
            .run();
        let expected = prepared.miner().min_sup(2).mode(Mode::All).run();
        assert_eq!(outcome.patterns, expected.patterns);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn opening_a_missing_file_is_an_io_error() {
        let err = PreparedDb::open_snapshot(temp_path("never-written")).unwrap_err();
        assert!(matches!(err, seqdb::SnapshotError::Io(_)), "{err}");
    }
}
