//! Brute-force reference implementations used to validate the efficient
//! algorithms in tests and property-based tests.
//!
//! These routines are exponential in the worst case and intended only for
//! tiny inputs; they compute the quantities of the paper directly from
//! their definitions:
//!
//! * [`all_landmarks`] enumerates **every** landmark of a pattern
//!   (Definition 2.1),
//! * [`max_non_overlapping`] computes the repetitive support as the size of
//!   a maximum non-redundant instance set (Definition 2.5) via backtracking
//!   over the overlap-conflict graph,
//! * [`enumerate_frequent`] enumerates all frequent patterns by exhaustive
//!   search over the pattern space (bounded by the Apriori property),
//! * [`closed_subset`] filters a set of mined patterns down to the closed
//!   ones by pairwise definition-level checks (Definition 2.6).

use std::collections::BTreeSet;

use seqdb::{EventId, SequenceDatabase};

use crate::growth::SupportComputer;
use crate::instance::Landmark;
use crate::pattern::Pattern;
use crate::result::MinedPattern;

/// Enumerates every landmark of `pattern` in every sequence of `db`.
///
/// The number of landmarks can grow combinatorially; callers must keep the
/// inputs small (this is test support code).
pub fn all_landmarks(db: &SequenceDatabase, pattern: &[EventId]) -> Vec<Landmark> {
    let mut result = Vec::new();
    if pattern.is_empty() {
        return result;
    }
    for (seq_idx, sequence) in db.sequences().enumerate() {
        let mut stack: Vec<(usize, Vec<u32>)> = vec![(0, Vec::new())];
        while let Some((depth, positions)) = stack.pop() {
            if depth == pattern.len() {
                result.push(Landmark::new(seq_idx, positions));
                continue;
            }
            let start = positions.last().map_or(0, |&p| p as usize);
            for pos in (start + 1)..=sequence.len() {
                if sequence.at(pos) == Some(pattern[depth]) {
                    let mut next = positions.clone();
                    next.push(pos as u32);
                    stack.push((depth + 1, next));
                }
            }
        }
    }
    result
}

/// Computes the repetitive support of `pattern` directly from
/// Definition 2.5: the maximum number of pairwise non-overlapping landmarks,
/// found by exhaustive backtracking with simple pruning.
pub fn max_non_overlapping(db: &SequenceDatabase, pattern: &[EventId]) -> u64 {
    if pattern.is_empty() {
        return 0;
    }
    // Instances in different sequences never overlap, so the maximum
    // decomposes over sequences.
    let mut total = 0u64;
    for seq_idx in 0..db.num_sequences() {
        let single = SequenceDatabase::from_parts(
            db.catalog().clone(),
            vec![db.sequence(seq_idx).expect("sequence exists").to_sequence()],
        );
        let landmarks = all_landmarks(&single, pattern);
        total += max_independent(&landmarks);
    }
    total
}

/// Maximum number of pairwise non-overlapping landmarks (within a single
/// sequence) via branch-and-bound backtracking.
fn max_independent(landmarks: &[Landmark]) -> u64 {
    fn recurse(landmarks: &[Landmark], chosen: &mut Vec<usize>, start: usize, best: &mut u64) {
        let upper_bound = chosen.len() as u64 + (landmarks.len() - start) as u64;
        if upper_bound <= *best {
            return;
        }
        if start == landmarks.len() {
            *best = (*best).max(chosen.len() as u64);
            return;
        }
        // Option 1: take `start` if compatible with everything chosen.
        if chosen
            .iter()
            .all(|&i| !landmarks[i].overlaps(&landmarks[start]))
        {
            chosen.push(start);
            recurse(landmarks, chosen, start + 1, best);
            chosen.pop();
        }
        // Option 2: skip `start`.
        recurse(landmarks, chosen, start + 1, best);
    }

    let mut best = 0u64;
    recurse(landmarks, &mut Vec::new(), 0, &mut best);
    best
}

/// Enumerates every frequent pattern (support `>= min_sup`) of length at
/// most `max_len` by breadth-first growth over the event alphabet, computing
/// supports with the brute-force [`max_non_overlapping`].
pub fn enumerate_frequent(
    db: &SequenceDatabase,
    min_sup: u64,
    max_len: usize,
) -> Vec<MinedPattern> {
    let events: Vec<EventId> = db.catalog().ids().collect();
    let mut frontier: Vec<Pattern> = vec![Pattern::empty()];
    let mut result = Vec::new();
    for _len in 1..=max_len {
        let mut next_frontier = Vec::new();
        for prefix in &frontier {
            for &event in &events {
                let candidate = prefix.grow(event);
                let support = max_non_overlapping(db, candidate.events());
                if support >= min_sup {
                    result.push(MinedPattern::new(candidate.clone(), support));
                    next_frontier.push(candidate);
                }
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    result
}

/// Enumerates every frequent pattern using the *efficient* support
/// computation (instance growth) but exhaustive pattern enumeration. Useful
/// to cross-check GSgrow's search independently of the support routine.
pub fn enumerate_frequent_fast(
    db: &SequenceDatabase,
    min_sup: u64,
    max_len: usize,
) -> Vec<MinedPattern> {
    let sc = SupportComputer::new(db);
    let events: Vec<EventId> = db.catalog().ids().collect();
    let mut frontier: Vec<Pattern> = vec![Pattern::empty()];
    let mut result = Vec::new();
    for _len in 1..=max_len {
        let mut next_frontier = Vec::new();
        for prefix in &frontier {
            for &event in &events {
                let candidate = prefix.grow(event);
                let support = sc.support(&candidate);
                if support >= min_sup {
                    result.push(MinedPattern::new(candidate.clone(), support));
                    next_frontier.push(candidate);
                }
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    result
}

/// Enumerates every landmark of `pattern` that satisfies `constraints`
/// (brute-force reference for the constrained miners).
pub fn all_landmarks_constrained(
    db: &SequenceDatabase,
    pattern: &[EventId],
    constraints: crate::constraints::GapConstraints,
) -> Vec<Landmark> {
    all_landmarks(db, pattern)
        .into_iter()
        .filter(|l| constraints.admits_landmark(&l.positions))
        .collect()
}

/// The exact maximum number of pairwise non-overlapping *constraint-
/// admissible* instances of `pattern`, by exhaustive backtracking.
///
/// The greedy constrained support of
/// [`crate::constrained::ConstrainedSupportComputer`] is always a lower
/// bound on this value and coincides with it in the unconstrained case
/// (Lemma 4); the property tests compare the two.
pub fn max_non_overlapping_constrained(
    db: &SequenceDatabase,
    pattern: &[EventId],
    constraints: crate::constraints::GapConstraints,
) -> u64 {
    if pattern.is_empty() {
        return 0;
    }
    let mut total = 0u64;
    for seq_idx in 0..db.num_sequences() {
        let single = SequenceDatabase::from_parts(
            db.catalog().clone(),
            vec![db.sequence(seq_idx).expect("sequence exists").to_sequence()],
        );
        let landmarks = all_landmarks_constrained(&single, pattern, constraints);
        total += max_independent(&landmarks);
    }
    total
}

/// Filters `patterns` down to the closed ones by the definition: a pattern
/// is closed iff no **super-pattern with equal support** exists in the
/// database. Super-patterns are taken from the (complete) mined set itself,
/// which is sound because support is monotone (Lemma 1): any super-pattern
/// with equal support is itself frequent and therefore present in a complete
/// result.
pub fn closed_subset(patterns: &[MinedPattern]) -> Vec<MinedPattern> {
    let mut closed = Vec::new();
    for candidate in patterns {
        let is_closed = !patterns.iter().any(|other| {
            other.support == candidate.support
                && other.pattern.is_proper_superpattern_of(&candidate.pattern)
        });
        if is_closed {
            closed.push(candidate.clone());
        }
    }
    closed
}

/// The set of patterns (as event-id vectors) in a result, for set-equality
/// assertions in tests.
pub fn pattern_set(patterns: &[MinedPattern]) -> BTreeSet<Vec<EventId>> {
    patterns
        .iter()
        .map(|mp| mp.pattern.events().to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    fn simple_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"])
    }

    #[test]
    fn all_landmarks_of_ab_in_table_ii() {
        // Example 2.1: AB has 3 landmarks in S1 and 4 in S2.
        let db = simple_example();
        let ab = db.pattern_from_str("AB").unwrap();
        let landmarks = all_landmarks(&db, &ab);
        let in_s1 = landmarks.iter().filter(|l| l.seq == 0).count();
        let in_s2 = landmarks.iter().filter(|l| l.seq == 1).count();
        assert_eq!(in_s1, 3);
        assert_eq!(in_s2, 4);
    }

    #[test]
    fn brute_force_support_matches_paper_examples() {
        let simple = simple_example();
        assert_eq!(
            max_non_overlapping(&simple, &simple.pattern_from_str("AB").unwrap()),
            4
        );
        assert_eq!(
            max_non_overlapping(&simple, &simple.pattern_from_str("ABA").unwrap()),
            2
        );
        assert_eq!(
            max_non_overlapping(&simple, &simple.pattern_from_str("ABC").unwrap()),
            4
        );

        let running = running_example();
        assert_eq!(
            max_non_overlapping(&running, &running.pattern_from_str("ACB").unwrap()),
            3
        );
        assert_eq!(
            max_non_overlapping(&running, &running.pattern_from_str("ACA").unwrap()),
            3
        );
        assert_eq!(
            max_non_overlapping(&running, &running.pattern_from_str("A").unwrap()),
            5
        );
    }

    #[test]
    fn brute_force_agrees_with_instance_growth_on_examples() {
        for rows in [
            vec!["ABCABCA", "AABBCCC"],
            vec!["ABCACBDDB", "ACDBACADD"],
            vec!["AABCDABB", "ABCD"],
            vec!["AABBAABB"],
        ] {
            let db = SequenceDatabase::from_str_rows(&rows);
            let sc = SupportComputer::new(&db);
            for pattern_str in ["A", "AB", "BA", "ABA", "AABB", "ABAB", "BB", "BBB"] {
                if let Some(pattern) = db.pattern_from_str(pattern_str) {
                    let brute = max_non_overlapping(&db, &pattern);
                    let fast = sc.support(&Pattern::new(pattern.clone()));
                    assert_eq!(brute, fast, "pattern {pattern_str} on {rows:?}");
                }
            }
        }
    }

    #[test]
    fn enumerate_frequent_fast_and_slow_agree_on_small_input() {
        let db = simple_example();
        let slow = enumerate_frequent(&db, 2, 4);
        let fast = enumerate_frequent_fast(&db, 2, 4);
        assert_eq!(pattern_set(&slow), pattern_set(&fast));
        for mp in &slow {
            let twin = fast
                .iter()
                .find(|other| other.pattern == mp.pattern)
                .expect("pattern present in both");
            assert_eq!(twin.support, mp.support, "support of {:?}", mp.pattern);
        }
    }

    #[test]
    fn closed_subset_drops_ab_in_favour_of_abc() {
        // Example 2.3: sup(AB) = sup(ABC) = 4, so AB is not closed.
        let db = simple_example();
        let all = enumerate_frequent(&db, 2, 4);
        let closed = closed_subset(&all);
        let ab = Pattern::new(db.pattern_from_str("AB").unwrap());
        let abc = Pattern::new(db.pattern_from_str("ABC").unwrap());
        assert!(all.iter().any(|mp| mp.pattern == ab));
        assert!(!closed.iter().any(|mp| mp.pattern == ab));
        assert!(closed.iter().any(|mp| mp.pattern == abc));
    }

    #[test]
    fn stronger_overlap_definition_would_change_aba_example() {
        // Footnote 1 of the paper: under the non-overlap definition used,
        // sup(ABA) = 2 in S1 = ABCABCA; the two instances share position 4
        // but at different pattern indices.
        let db = SequenceDatabase::from_str_rows(&["ABCABCA"]);
        let aba = db.pattern_from_str("ABA").unwrap();
        assert_eq!(max_non_overlapping(&db, &aba), 2);
    }
}
