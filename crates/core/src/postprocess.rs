//! Post-processing of mined pattern sets, following the case study of
//! §IV-B.
//!
//! The raw closed-pattern set can still be large (6 070 patterns in the
//! JBoss case study). The paper applies three steps adapted from the
//! iterative-pattern study it compares against:
//!
//! 1. **Density** — keep only patterns whose number of *unique* events is
//!    more than a fraction (40 % in the paper) of the pattern length,
//! 2. **Maximality** — keep only patterns that are not sub-patterns of
//!    another reported pattern,
//! 3. **Ranking** — order the survivors by length (longest first).

use crate::result::MinedPattern;

/// Configuration of the post-processing pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PostProcessConfig {
    /// Minimum ratio of unique events to pattern length (exclusive bound, as
    /// in the paper: "the number of unique events is > 40 % of its length").
    pub min_density: f64,
    /// Whether to keep only maximal patterns.
    pub maximal_only: bool,
    /// Whether to sort the survivors by descending length (then descending
    /// support, then lexicographically).
    pub rank_by_length: bool,
}

impl Default for PostProcessConfig {
    fn default() -> Self {
        // The case-study settings of §IV-B.
        Self {
            min_density: 0.4,
            maximal_only: true,
            rank_by_length: true,
        }
    }
}

impl PostProcessConfig {
    /// A configuration that only ranks (no filtering).
    pub fn rank_only() -> Self {
        Self {
            min_density: 0.0,
            maximal_only: false,
            rank_by_length: true,
        }
    }
}

/// The density of a pattern: unique events divided by length. Empty patterns
/// have density 0.
pub fn density(pattern: &MinedPattern) -> f64 {
    if pattern.pattern.is_empty() {
        return 0.0;
    }
    pattern.pattern.distinct_events() as f64 / pattern.pattern.len() as f64
}

/// Applies the post-processing pipeline to `patterns` and returns the
/// surviving patterns (cloned, in ranked order when requested).
pub fn postprocess(patterns: &[MinedPattern], config: &PostProcessConfig) -> Vec<MinedPattern> {
    // 1. Density filter.
    let mut survivors: Vec<MinedPattern> = patterns
        .iter()
        .filter(|mp| density(mp) > config.min_density)
        .cloned()
        .collect();

    // 2. Maximality filter: drop any pattern that is a proper sub-pattern of
    //    another survivor.
    if config.maximal_only {
        let snapshot = survivors.clone();
        survivors.retain(|candidate| {
            !snapshot
                .iter()
                .any(|other| other.pattern.is_proper_superpattern_of(&candidate.pattern))
        });
    }

    // 3. Ranking by length.
    if config.rank_by_length {
        survivors.sort_by(|a, b| {
            b.pattern
                .len()
                .cmp(&a.pattern.len())
                .then_with(|| b.support.cmp(&a.support))
                .then_with(|| a.pattern.cmp(&b.pattern))
        });
    }
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use seqdb::EventId;

    fn mp(ids: &[u32], support: u64) -> MinedPattern {
        MinedPattern::new(
            Pattern::new(ids.iter().map(|&i| EventId(i)).collect()),
            support,
        )
    }

    #[test]
    fn density_is_unique_over_length() {
        assert!((density(&mp(&[0, 1, 0, 2], 1)) - 0.75).abs() < 1e-9);
        assert!((density(&mp(&[0, 0, 0], 1)) - (1.0 / 3.0)).abs() < 1e-9);
        assert_eq!(density(&MinedPattern::new(Pattern::empty(), 0)), 0.0);
    }

    #[test]
    fn density_filter_drops_repetitive_low_diversity_patterns() {
        let patterns = vec![mp(&[0, 0, 0, 0, 0], 9), mp(&[0, 1, 2], 5)];
        let config = PostProcessConfig {
            min_density: 0.4,
            maximal_only: false,
            rank_by_length: false,
        };
        let out = postprocess(&patterns, &config);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].pattern, mp(&[0, 1, 2], 5).pattern);
    }

    #[test]
    fn maximality_filter_keeps_only_maximal_patterns() {
        let patterns = vec![mp(&[0, 1], 4), mp(&[0, 1, 2], 4), mp(&[3], 9)];
        let config = PostProcessConfig {
            min_density: 0.0,
            maximal_only: true,
            rank_by_length: false,
        };
        let out = postprocess(&patterns, &config);
        let kept: Vec<_> = out.iter().map(|p| p.pattern.clone()).collect();
        assert!(kept.contains(&mp(&[0, 1, 2], 4).pattern));
        assert!(kept.contains(&mp(&[3], 9).pattern));
        assert!(!kept.contains(&mp(&[0, 1], 4).pattern));
    }

    #[test]
    fn ranking_orders_by_length_then_support() {
        let patterns = vec![mp(&[0], 10), mp(&[1, 2], 3), mp(&[3, 4], 7)];
        let config = PostProcessConfig::rank_only();
        let out = postprocess(&patterns, &config);
        assert_eq!(out[0].pattern, mp(&[3, 4], 7).pattern);
        assert_eq!(out[1].pattern, mp(&[1, 2], 3).pattern);
        assert_eq!(out[2].pattern, mp(&[0], 10).pattern);
    }

    #[test]
    fn default_config_matches_case_study_settings() {
        let config = PostProcessConfig::default();
        assert!((config.min_density - 0.4).abs() < 1e-9);
        assert!(config.maximal_only);
        assert!(config.rank_by_length);
    }

    #[test]
    fn duplicate_patterns_survive_maximality_against_themselves() {
        // A pattern equal to another is not a *proper* sub-pattern, so exact
        // duplicates are kept (the miners never emit duplicates anyway).
        let patterns = vec![mp(&[0, 1], 4), mp(&[0, 1], 4)];
        let out = postprocess(&patterns, &PostProcessConfig::default());
        assert_eq!(out.len(), 2);
    }
}
