//! Top-k mining of repetitive gapped subsequences.
//!
//! For exploratory use, choosing `min_sup` is awkward: too low and the
//! result explodes (the paper's Figures 2–6 show exactly this), too high and
//! nothing interesting is found. Top-k mining sidesteps the problem by
//! asking for the `k` most frequent patterns of at least a minimum length,
//! raising the support threshold dynamically as better patterns are found
//! (in the spirit of TSP-style top-k closed sequential pattern mining).
//!
//! The search is the same prefix DFS as GSgrow; the Apriori property lets
//! the miner prune any subtree whose root support is already below the
//! current dynamic threshold, because no descendant can beat it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

use seqdb::{EventId, SequenceDatabase};

use crate::closure::{CheckScratch, ClosureChecker, ClosureStatus};
use crate::engine::{Miner, Mode};
use crate::growth::{SetPool, SupportComputer};
use crate::parallel::fan_out_seeds;
use crate::pattern::Pattern;
use crate::prepared::PreparedRef;
use crate::result::{MinedPattern, MiningOutcome, MiningStats};
use crate::support::SupportSet;

/// Configuration for [`mine_top_k`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKConfig {
    /// How many patterns to return.
    pub k: usize,
    /// Only patterns of at least this length compete for the top-k slots
    /// (length-1 patterns are trivially the most frequent, so `min_len = 2`
    /// is a sensible exploratory default).
    pub min_len: usize,
    /// When `true`, only *closed* patterns (Definition 2.6, verified by the
    /// closure check of Theorem 4) occupy top-k slots.
    pub closed_only: bool,
    /// A hard floor on the support: patterns below this never qualify even
    /// if fewer than `k` better patterns exist.
    pub min_sup_floor: u64,
    /// Optional cap on pattern length for the DFS.
    pub max_pattern_length: Option<usize>,
}

impl TopKConfig {
    /// Top-k closed patterns of length at least 2 with no support floor.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            min_len: 2,
            closed_only: true,
            min_sup_floor: 1,
            max_pattern_length: None,
        }
    }

    /// Sets the minimum qualifying pattern length.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len;
        self
    }

    /// Includes non-closed patterns in the ranking.
    pub fn including_non_closed(mut self) -> Self {
        self.closed_only = false;
        self
    }

    /// Sets a hard floor on the support of qualifying patterns.
    pub fn with_min_sup_floor(mut self, floor: u64) -> Self {
        self.min_sup_floor = floor.max(1);
        self
    }

    /// Caps the pattern length explored by the DFS.
    pub fn with_max_pattern_length(mut self, max_len: usize) -> Self {
        self.max_pattern_length = Some(max_len);
        self
    }
}

/// Mines the `k` most frequent (optionally closed) repetitive gapped
/// subsequences of length at least `config.min_len`.
///
/// The result is sorted by descending support, then by descending length,
/// then lexicographically; ties at the k-th support value are broken by that
/// order, so the result always has at most `k` patterns.
#[deprecated(
    since = "0.2.0",
    note = "use `Miner::new(db).min_sup(floor).mode(Mode::Closed).top_k(k).min_len(2).run()`; \
            for repeated queries prepare once (`PreparedDb::new`) or open a \
            snapshot (`Miner::from_snapshot`) instead of re-indexing per call"
)]
pub fn mine_top_k(db: &SequenceDatabase, config: &TopKConfig) -> MiningOutcome {
    let mut miner = Miner::new(db)
        .min_sup(config.min_sup_floor)
        .mode(if config.closed_only {
            Mode::Closed
        } else {
            Mode::All
        })
        .top_k(config.k)
        .min_len(config.min_len);
    if let Some(len) = config.max_pattern_length {
        miner = miner.max_pattern_length(len);
    }
    miner.run()
}

/// Internal parameters of the dynamic-threshold top-k search, built by the
/// engine from a [`crate::MiningRequest`].
pub(crate) struct TopKParams {
    /// How many patterns to return.
    pub k: usize,
    /// Minimum qualifying pattern length.
    pub min_len: usize,
    /// Restrict the ranking to closed patterns (Theorem 4 check).
    pub closed_only: bool,
    /// Hard floor on qualifying supports.
    pub min_sup_floor: u64,
    /// Optional DFS pattern-length cap.
    pub max_pattern_length: Option<usize>,
    /// Attach the leftmost support set to every reported pattern.
    pub keep_support_sets: bool,
}

/// The dynamic-threshold top-k search (TSP-style): returns the sorted,
/// truncated top-k list plus search statistics. Elapsed time is the
/// caller's responsibility.
pub(crate) fn run_top_k(
    prepared: PreparedRef<'_>,
    params: &TopKParams,
) -> (Vec<MinedPattern>, MiningStats) {
    let mut stats = MiningStats::default();
    if params.k == 0 {
        return (Vec::new(), stats);
    }
    let sc = prepared.support_computer();
    let events = prepared.parts.frequent_events(params.min_sup_floor.max(1));
    let checker = ClosureChecker::new(&sc, &events);
    let mut state = TopKState {
        sc: &sc,
        checker: &checker,
        params,
        events: &events,
        // Min-heap over the supports currently occupying top-k slots.
        heap: BinaryHeap::new(),
        collected: Vec::new(),
        visited: 0,
        growths: 0,
        pool: SetPool::new(),
        scratch: CheckScratch::new(),
        shared_floor: None,
    };
    for &event in &events {
        let support = sc.initial_support_set(event);
        if support.support() >= state.threshold() {
            let mut stack = vec![support];
            state.descend(&Pattern::single(event), &mut stack);
        }
    }
    stats.visited = state.visited;
    stats.instance_growths = state.growths;
    let collected = state.collected;
    (finish_top_k(collected, params.k), stats)
}

/// Parallel dynamic-threshold top-k: seed subtrees are fanned out across
/// workers that share the current support floor through an atomic.
///
/// Each worker keeps a *local* top-k heap; whenever its heap holds `k`
/// entries, its k-th best support is a lower bound on the global k-th best
/// (a subset's k-th largest never exceeds the superset's), so publishing it
/// via `fetch_max` only ever prunes subtrees that cannot reach the final
/// top-k. Every pattern with support at or above the true k-th best is
/// therefore collected by some worker, and the final sort under the total
/// report order (support desc, length desc, lexicographic) makes the merged
/// result bit-identical to the sequential one.
pub(crate) fn run_top_k_parallel(
    prepared: PreparedRef<'_>,
    params: &TopKParams,
    threads: usize,
) -> (Vec<MinedPattern>, MiningStats) {
    let mut stats = MiningStats::default();
    if params.k == 0 {
        return (Vec::new(), stats);
    }
    let sc = prepared.support_computer();
    let events = prepared.parts.frequent_events(params.min_sup_floor.max(1));
    let checker = ClosureChecker::new(&sc, &events);
    let floor = AtomicU64::new(params.min_sup_floor.max(1));
    let results = fan_out_seeds(threads, events.len(), |i| {
        let mut state = TopKState {
            sc: &sc,
            checker: &checker,
            params,
            events: &events,
            heap: BinaryHeap::new(),
            collected: Vec::new(),
            visited: 0,
            growths: 0,
            pool: SetPool::new(),
            scratch: CheckScratch::new(),
            shared_floor: Some(&floor),
        };
        let support = sc.initial_support_set(events[i]);
        if support.support() >= state.threshold() {
            let mut stack = vec![support];
            state.descend(&Pattern::single(events[i]), &mut stack);
        }
        (state.collected, state.visited, state.growths)
    });
    let mut collected = Vec::new();
    for (patterns, visited, growths) in results {
        collected.extend(patterns);
        stats.visited += visited;
        stats.instance_growths += growths;
    }
    (finish_top_k(collected, params.k), stats)
}

/// Sorts the collected candidates under the canonical report order and
/// keeps the best `k` — the deterministic merge shared by the sequential
/// and parallel searches.
fn finish_top_k(mut collected: Vec<MinedPattern>, k: usize) -> Vec<MinedPattern> {
    crate::result::sort_patterns_for_report(&mut collected);
    collected.truncate(k);
    collected
}

struct TopKState<'a, 'b> {
    sc: &'a SupportComputer<'b>,
    checker: &'a ClosureChecker<'a, 'b>,
    params: &'a TopKParams,
    events: &'a [EventId],
    heap: BinaryHeap<Reverse<u64>>,
    collected: Vec<MinedPattern>,
    visited: u64,
    growths: u64,
    /// Recycles support sets across growth attempts (see
    /// [`crate::growth::SetPool`]).
    pool: SetPool,
    /// Ping/pong buffers for the closure check's extension growth.
    scratch: CheckScratch,
    /// In parallel runs, the support floor shared across workers; `None`
    /// for the sequential search.
    shared_floor: Option<&'a AtomicU64>,
}

impl TopKState<'_, '_> {
    /// The dynamic support threshold: while fewer than `k` qualifying
    /// patterns have been found it is the configured floor, afterwards it is
    /// the smallest support among the current top-k. In parallel runs the
    /// shared floor published by other workers raises it further.
    fn threshold(&self) -> u64 {
        let local = if self.heap.len() < self.params.k {
            self.params.min_sup_floor.max(1)
        } else {
            self.heap
                .peek()
                .map(|Reverse(s)| *s)
                .unwrap_or(self.params.min_sup_floor)
                .max(self.params.min_sup_floor)
        };
        match self.shared_floor {
            Some(floor) => local.max(floor.load(Ordering::Relaxed)),
            None => local,
        }
    }

    fn allows_growth(&self, len: usize) -> bool {
        self.params.max_pattern_length.is_none_or(|max| len < max)
    }

    /// Visits `pattern`, whose prefix support sets (including its own, on
    /// top) are held by `stack`.
    fn descend(&mut self, pattern: &Pattern, stack: &mut Vec<SupportSet>) {
        self.visited += 1;
        let sup = stack.last().expect("support of pattern").support();

        // Compute the append children up front: they are needed both for the
        // closure verdict (append extensions with equal support) and for the
        // recursion.
        let events = self.events;
        let mut children: Vec<(EventId, SupportSet)> = Vec::new();
        let mut append_equal = false;
        if self.allows_growth(pattern.len()) {
            for &event in events {
                self.growths += 1;
                let mut grown = self.pool.take();
                self.sc.instance_growth_into(
                    stack.last().expect("support set"),
                    event,
                    usize::MAX,
                    &mut grown,
                );
                if grown.support() == sup {
                    append_equal = true;
                }
                if grown.support() >= 1 {
                    children.push((event, grown));
                } else {
                    self.pool.give(grown);
                }
            }
        }

        if pattern.len() >= self.params.min_len && sup >= self.threshold() {
            let qualifies = if self.params.closed_only {
                self.checker
                    .check(pattern, stack, append_equal, &mut self.scratch)
                    == ClosureStatus::Closed
            } else {
                true
            };
            if qualifies {
                self.heap.push(Reverse(sup));
                if self.heap.len() > self.params.k {
                    self.heap.pop();
                }
                // With k local entries, the local k-th best is a sound lower
                // bound on the global k-th best: publish it to the other
                // workers.
                if let (Some(floor), Some(&Reverse(kth))) = (self.shared_floor, self.heap.peek()) {
                    if self.heap.len() >= self.params.k {
                        floor.fetch_max(kth, Ordering::Relaxed);
                    }
                }
                let mut mined = MinedPattern::new(pattern.clone(), sup);
                if self.params.keep_support_sets {
                    mined.support_set = Some(stack.last().expect("support set").clone());
                }
                self.collected.push(mined);
            }
        }

        for (event, grown) in children {
            // Apriori pruning against the *current* dynamic threshold: no
            // pattern in this subtree can have higher support than `grown`.
            if grown.support() >= self.threshold() {
                stack.push(grown);
                self.descend(&pattern.grow(event), stack);
                let done = stack.pop().expect("pushed above");
                self.pool.give(done);
            } else {
                self.pool.give(grown);
            }
        }
    }
}

#[cfg(test)]
mod tests {

    use super::*;

    fn all_patterns(
        db: &seqdb::SequenceDatabase,
        config: &crate::MiningConfig,
    ) -> crate::MiningOutcome {
        crate::Miner::new(db)
            .from_config(config)
            .mode(crate::Mode::All)
            .run()
    }

    fn closed_patterns(
        db: &seqdb::SequenceDatabase,
        config: &crate::MiningConfig,
    ) -> crate::MiningOutcome {
        crate::Miner::new(db)
            .from_config(config)
            .mode(crate::Mode::Closed)
            .run()
    }

    fn top_k_patterns(
        db: &seqdb::SequenceDatabase,
        config: &crate::TopKConfig,
    ) -> crate::MiningOutcome {
        let mut miner = crate::Miner::new(db)
            .min_sup(config.min_sup_floor)
            .mode(if config.closed_only {
                crate::Mode::Closed
            } else {
                crate::Mode::All
            })
            .top_k(config.k)
            .min_len(config.min_len);
        if let Some(len) = config.max_pattern_length {
            miner = miner.max_pattern_length(len);
        }
        miner.run()
    }

    use crate::config::MiningConfig;

    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    fn simple_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"])
    }

    #[test]
    fn top_k_returns_at_most_k_patterns_sorted_by_support() {
        let db = running_example();
        let outcome = top_k_patterns(&db, &TopKConfig::new(5));
        assert!(outcome.len() <= 5);
        assert!(!outcome.is_empty());
        for w in outcome.patterns.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
        for mp in &outcome.patterns {
            assert!(mp.pattern.len() >= 2);
        }
    }

    #[test]
    fn top_k_closed_matches_exhaustive_closed_mining() {
        // The k best closed patterns of length >= 2 must agree (as a support
        // multiset) with sorting the full closed result.
        let db = running_example();
        for k in [1, 3, 5, 10] {
            let topk = top_k_patterns(&db, &TopKConfig::new(k));
            let mut full = closed_patterns(&db, &MiningConfig::new(1));
            full.patterns.retain(|mp| mp.pattern.len() >= 2);
            full.sort_for_report();
            let expected: Vec<u64> = full.patterns.iter().take(k).map(|mp| mp.support).collect();
            let got: Vec<u64> = topk.patterns.iter().map(|mp| mp.support).collect();
            assert_eq!(got, expected, "k = {k}");
        }
    }

    #[test]
    fn top_k_including_non_closed_matches_exhaustive_all_mining() {
        let db = simple_example();
        for k in [1, 4, 8] {
            let topk = top_k_patterns(&db, &TopKConfig::new(k).including_non_closed());
            let mut full = all_patterns(&db, &MiningConfig::new(1));
            full.patterns.retain(|mp| mp.pattern.len() >= 2);
            full.sort_for_report();
            let expected: Vec<u64> = full.patterns.iter().take(k).map(|mp| mp.support).collect();
            let got: Vec<u64> = topk.patterns.iter().map(|mp| mp.support).collect();
            assert_eq!(got, expected, "k = {k}");
        }
    }

    #[test]
    fn min_len_one_lets_single_events_compete() {
        let db = running_example();
        let outcome = top_k_patterns(
            &db,
            &TopKConfig::new(3).with_min_len(1).including_non_closed(),
        );
        // The best support is 5 (A, D, and the length-2 pattern AD all reach
        // it); the length-desc tie-break puts AD first, and the single
        // events are allowed to occupy the remaining slots.
        assert_eq!(outcome.patterns[0].support, 5);
        assert_eq!(outcome.patterns.len(), 3);
        assert!(outcome.patterns.iter().all(|mp| mp.support == 5));
        assert!(outcome.patterns.iter().any(|mp| mp.pattern.len() == 1));
    }

    #[test]
    fn support_floor_filters_low_support_patterns() {
        let db = running_example();
        let config = TopKConfig::new(50).with_min_sup_floor(3);
        let outcome = top_k_patterns(&db, &config);
        assert!(!outcome.is_empty());
        for mp in &outcome.patterns {
            assert!(mp.support >= 3, "{mp:?}");
        }
    }

    #[test]
    fn k_zero_and_empty_database_yield_empty_results() {
        let db = running_example();
        assert!(top_k_patterns(&db, &TopKConfig::new(0)).is_empty());
        let empty = SequenceDatabase::new();
        assert!(top_k_patterns(&empty, &TopKConfig::new(5)).is_empty());
    }

    #[test]
    fn max_pattern_length_caps_exploration() {
        let db = running_example();
        let outcome = top_k_patterns(
            &db,
            &TopKConfig::new(10)
                .including_non_closed()
                .with_max_pattern_length(2),
        );
        assert!(outcome.max_pattern_length() <= 2);
    }

    #[test]
    fn every_reported_pattern_has_its_true_support() {
        let db = simple_example();
        let sc = SupportComputer::new(&db);
        let outcome = top_k_patterns(&db, &TopKConfig::new(6));
        for mp in &outcome.patterns {
            assert_eq!(sc.support(&mp.pattern), mp.support);
        }
    }
}
