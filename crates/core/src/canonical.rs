//! Request canonicalization: a stable, order-normalized cache key for a
//! [`MiningRequest`].
//!
//! The serve layer caches mining results under `(image checksum, canonical
//! request)`. For that key to be *correct* it must identify exactly the
//! information that determines the mined pattern set — nothing more (or
//! equivalent requests miss the cache) and nothing less (or different
//! requests collide). [`canonical_key`] therefore:
//!
//! * **normalizes equivalent spellings** — `min_sup: 0` behaves as `1`
//!   (support is at least 1 for any reported pattern), and
//!   [`Mode::TopK`](crate::Mode) is exactly `Mode::Closed` plus
//!   `top_k: Some(DEFAULT_TOP_K)` ([`MiningRequest::base_mode`] /
//!   [`MiningRequest::effective_k`]), so both spellings map to one key;
//! * **drops non-semantic knobs** — [`ExecutionPolicy`](crate::ExecutionPolicy)
//!   and `use_landmark_pruning` are pinned bit-identical by the engine's
//!   equivalence suites (they change wall-clock, never the pattern set),
//!   and `keep_support_sets` only attaches extra per-pattern data the wire
//!   protocol never serializes;
//! * **fixes the field order** — the key is one flat string with every
//!   semantic field in a fixed position, so two requests built in any
//!   field order (or parsed from JSON bodies with shuffled members)
//!   compare equal byte for byte.
//!
//! The seeded property test in `crates/serve/tests/canonical_key.rs` pins
//! both directions: equivalent requests agree, semantically different
//! requests differ.

use crate::engine::MiningRequest;
use crate::Mode;

/// Version tag baked into every key so a future change to the key grammar
/// (or to what counts as "semantic") invalidates old cache entries instead
/// of silently colliding with them.
const KEY_VERSION: u32 = 1;

/// Formats an optional bound as its value or `-` (absent).
fn opt<T: std::fmt::Display>(value: Option<T>) -> String {
    value.map_or_else(|| "-".to_owned(), |v| v.to_string())
}

/// The canonical, order-normalized cache key of `request`.
///
/// Two requests receive the same key **iff** the engine guarantees them the
/// same pattern payload (same patterns, same order, same truncation flag).
///
/// ```
/// use rgs_core::{canonical_key, MiningRequest, Mode, ExecutionPolicy, DEFAULT_TOP_K};
///
/// // TopK mode is closed mining plus a rank cap — one key for both.
/// let spelled_out = MiningRequest {
///     mode: Mode::Closed,
///     top_k: Some(DEFAULT_TOP_K),
///     ..MiningRequest::default()
/// };
/// let shorthand = MiningRequest { mode: Mode::TopK, ..MiningRequest::default() };
/// assert_eq!(canonical_key(&spelled_out), canonical_key(&shorthand));
///
/// // Execution policy never changes the mined set, so it never splits keys.
/// let parallel = MiningRequest {
///     execution: ExecutionPolicy::Parallel { threads: 8 },
///     ..MiningRequest::default()
/// };
/// assert_eq!(canonical_key(&parallel), canonical_key(&MiningRequest::default()));
/// ```
pub fn canonical_key(request: &MiningRequest) -> String {
    // A reported pattern always has support >= 1, so thresholds 0 and 1
    // admit identical sets.
    let min_sup = request.min_sup.max(1);
    let mode = match request.base_mode() {
        Mode::All => "all",
        Mode::Closed => "closed",
        Mode::Maximal => "maximal",
        // base_mode() resolves TopK to Closed; unreachable by construction.
        Mode::TopK => "closed",
    };
    let k = request.is_ranked().then(|| request.effective_k());
    let c = &request.constraints;
    format!(
        "v{KEY_VERSION};sup={min_sup};mode={mode};k={};ming={};maxg={};maxw={};minl={};maxl={};maxp={}",
        opt(k),
        c.min_gap,
        opt(c.max_gap),
        opt(c.max_window),
        request.min_len,
        opt(request.max_pattern_length),
        opt(request.max_patterns),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecutionPolicy, GapConstraints, DEFAULT_TOP_K};

    #[test]
    fn default_request_has_a_stable_spelled_out_key() {
        assert_eq!(
            canonical_key(&MiningRequest::default()),
            "v1;sup=2;mode=closed;k=-;ming=0;maxg=-;maxw=-;minl=0;maxl=-;maxp=-"
        );
    }

    #[test]
    fn equivalent_spellings_collapse_to_one_key() {
        let base = MiningRequest::default();
        let zero_sup = MiningRequest {
            min_sup: 0,
            ..base.clone()
        };
        let one_sup = MiningRequest {
            min_sup: 1,
            ..base.clone()
        };
        assert_eq!(canonical_key(&zero_sup), canonical_key(&one_sup));

        let topk_mode = MiningRequest {
            mode: Mode::TopK,
            ..base.clone()
        };
        let closed_ranked = MiningRequest {
            top_k: Some(DEFAULT_TOP_K),
            ..base.clone()
        };
        assert_eq!(canonical_key(&topk_mode), canonical_key(&closed_ranked));

        for variant in [
            MiningRequest {
                execution: ExecutionPolicy::Parallel { threads: 4 },
                ..base.clone()
            },
            MiningRequest {
                use_landmark_pruning: false,
                ..base.clone()
            },
            MiningRequest {
                keep_support_sets: true,
                ..base.clone()
            },
        ] {
            assert_eq!(canonical_key(&variant), canonical_key(&base));
        }
    }

    #[test]
    fn every_semantic_field_splits_the_key() {
        let base = MiningRequest::default();
        let variants = [
            MiningRequest {
                min_sup: 3,
                ..base.clone()
            },
            MiningRequest {
                mode: Mode::All,
                ..base.clone()
            },
            MiningRequest {
                mode: Mode::Maximal,
                ..base.clone()
            },
            MiningRequest {
                top_k: Some(5),
                ..base.clone()
            },
            MiningRequest {
                constraints: GapConstraints::unbounded().with_min_gap(1),
                ..base.clone()
            },
            MiningRequest {
                constraints: GapConstraints::max_gap(2),
                ..base.clone()
            },
            MiningRequest {
                constraints: GapConstraints::max_window(9),
                ..base.clone()
            },
            MiningRequest {
                min_len: 2,
                ..base.clone()
            },
            MiningRequest {
                max_pattern_length: Some(4),
                ..base.clone()
            },
            MiningRequest {
                max_patterns: Some(100),
                ..base.clone()
            },
        ];
        let base_key = canonical_key(&base);
        let mut keys: Vec<String> = variants.iter().map(canonical_key).collect();
        for key in &keys {
            assert_ne!(key, &base_key);
        }
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), variants.len(), "two variants collided");
    }

    #[test]
    fn bound_value_and_absent_bound_never_collide() {
        // `max_gap: None` must not collide with any literal value spelling.
        let unbounded = canonical_key(&MiningRequest::default());
        for g in 0..5 {
            let bounded = MiningRequest {
                constraints: GapConstraints::max_gap(g),
                ..MiningRequest::default()
            };
            assert_ne!(canonical_key(&bounded), unbounded);
        }
    }
}
