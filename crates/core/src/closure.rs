//! Closure checking (Theorem 4) and landmark border checking (Theorem 5).
//!
//! A pattern `P` is **not closed** iff some *extension* of `P` — a
//! super-pattern obtained by inserting one event `e'` at any slot
//! (Definition 3.4: append, interior insertion, or prepend) — has the same
//! repetitive support. Closure checking therefore rules non-closed patterns
//! out of the output, but cannot prune the search (Example 3.5: `AB` is not
//! closed yet `ABD` is).
//!
//! Landmark border checking (Theorem 5) is the pruning strategy: if some
//! equal-support extension's *leftmost* support set ends, instance by
//! instance, no later than `P`'s leftmost support set, then **no** pattern
//! with prefix `P` can be closed, and the whole DFS subtree rooted at `P`
//! can be skipped.
//!
//! The checker reuses the DFS stack of prefix support sets: the extension at
//! slot `j` shares the prefix `e1..ej`, whose leftmost support set is
//! already on the stack, so only the events from `e'` onwards need to be
//! re-grown (with early abort as soon as the support falls below `sup(P)`).

use std::borrow::Cow;

use seqdb::EventId;

use crate::growth::SupportComputer;
use crate::pattern::Pattern;
use crate::support::SupportSet;

/// Reusable scratch buffers for the closure check's extension growth.
///
/// `ClosureChecker::extension_support` chains one instance growth per
/// suffix event; with a ping/pong pair of support sets the whole chain runs
/// in the two buffers below, so a warm scratch makes every closure check
/// allocation-free. Each DFS (and each parallel worker) owns one scratch;
/// the checker itself stays shared and immutable.
#[derive(Debug, Default)]
pub struct CheckScratch {
    a: SupportSet,
    b: SupportSet,
}

impl CheckScratch {
    /// Creates an empty scratch (buffers warm up on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// The verdict of the combined closure / landmark-border check for one
/// pattern node of the DFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClosureStatus {
    /// No extension has equal support: the pattern is closed and is emitted.
    Closed,
    /// Some extension has equal support, but none satisfies the landmark
    /// border condition: the pattern is suppressed from the output, yet its
    /// subtree must still be explored (it may contain closed patterns).
    NonClosed,
    /// Some equal-support extension satisfies the landmark border condition
    /// (Theorem 5): the pattern and its entire subtree are pruned.
    Prune,
}

/// Stateless helper performing the checks of Theorems 4 and 5 against a
/// fixed database/index and candidate event set.
#[derive(Debug)]
pub struct ClosureChecker<'a, 'b> {
    sc: &'a SupportComputer<'b>,
    /// Candidate events for extensions, paired with their total occurrence
    /// count (an upper bound on any extension's support).
    candidates: Cow<'a, [(EventId, u64)]>,
}

impl<'a, 'b> ClosureChecker<'a, 'b> {
    /// Creates a checker. `frequent_events` must contain every event that
    /// can appear in a frequent pattern (all events with support
    /// `>= min_sup`); restricting extensions to those events is sound
    /// because an equal-support extension of a frequent pattern is itself
    /// frequent, hence so is the inserted event (Theorem 1).
    pub fn new(sc: &'a SupportComputer<'b>, frequent_events: &[EventId]) -> Self {
        let candidates: Vec<(EventId, u64)> = frequent_events
            .iter()
            .map(|&e| (e, sc.index().total_count(e) as u64))
            .collect();
        Self {
            sc,
            candidates: Cow::Owned(candidates),
        }
    }

    /// Creates a checker borrowing a precomputed `(event, total
    /// occurrences)` candidate table — used when the table outlives the
    /// checker (the pull-based pattern stream rebuilds the checker per
    /// step, O(1) with a borrowed table).
    pub(crate) fn from_candidates(
        sc: &'a SupportComputer<'b>,
        candidates: &'a [(EventId, u64)],
    ) -> Self {
        Self {
            sc,
            candidates: Cow::Borrowed(candidates),
        }
    }

    /// Runs the combined check for `pattern`.
    ///
    /// * `prefix_stack[j]` must be the leftmost support set of
    ///   `pattern.prefix(j + 1)`; in particular the last element is the
    ///   leftmost support set of `pattern` itself.
    /// * `append_has_equal_support` tells the checker whether some append
    ///   extension `P ◦ e` has support equal to `sup(P)`; the DFS computes
    ///   all append children anyway, so this information is free. Append
    ///   extensions can never trigger the landmark border condition (their
    ///   instances end strictly later than `P`'s), so they only matter for
    ///   the closed/non-closed verdict.
    pub fn check(
        &self,
        pattern: &Pattern,
        prefix_stack: &[SupportSet],
        append_has_equal_support: bool,
        scratch: &mut CheckScratch,
    ) -> ClosureStatus {
        let Some(support_set) = prefix_stack.last() else {
            // The empty pattern has no extensions on the stack to compare
            // against; it is never emitted, so the verdict is moot.
            return ClosureStatus::Closed;
        };
        let support = support_set.support();
        debug_assert_eq!(prefix_stack.len(), pattern.len());

        // Per-sequence instance counts of P. If sup(P') = sup(P) then, per
        // sequence, P' has exactly as many non-overlapping instances as P
        // (per-sequence maxima are monotone and the totals are equal), and
        // each of those instances consumes a distinct occurrence of the
        // inserted event. An event that occurs fewer times than that in some
        // sequence where P has instances can therefore never yield an
        // equal-support extension — filtering it out here keeps the
        // per-slot scan below cheap.
        let per_sequence_counts: Vec<(usize, usize)> = support_set
            .per_sequence()
            .map(|(seq, instances)| (seq, instances.len()))
            .collect();
        let viable: Vec<EventId> = self
            .candidates
            .iter()
            .filter(|&&(event, total)| {
                total >= support
                    && per_sequence_counts
                        .iter()
                        .all(|&(seq, count)| self.sc.index().count_in_sequence(seq, event) >= count)
            })
            .map(|&(event, _)| event)
            .collect();

        let mut non_closed = append_has_equal_support;
        // Slots 0..len: slot j inserts e' before pattern event j; slot 0 is a
        // prepend. Slot len (append) is covered by `append_has_equal_support`.
        for slot in 0..pattern.len() {
            for &event in &viable {
                if let Some(extension) =
                    self.extension_support(pattern, prefix_stack, slot, event, support, scratch)
                {
                    non_closed = true;
                    if landmark_border_holds(extension, support_set) {
                        return ClosureStatus::Prune;
                    }
                }
            }
        }
        if non_closed {
            ClosureStatus::NonClosed
        } else {
            ClosureStatus::Closed
        }
    }

    /// Computes the leftmost support set of the extension of `pattern` with
    /// `event` inserted at `slot`, returning it (borrowed from the scratch)
    /// only when its support equals `target`. Growth aborts early as soon as
    /// the support drops below `target` (the support of a super-pattern can
    /// never exceed it, Lemma 1). The whole chain ping-pongs between the two
    /// scratch buffers, so a warm scratch allocates nothing.
    fn extension_support<'s>(
        &self,
        pattern: &Pattern,
        prefix_stack: &[SupportSet],
        slot: usize,
        event: EventId,
        target: u64,
        scratch: &'s mut CheckScratch,
    ) -> Option<&'s SupportSet> {
        let target_usize = target as usize;
        let CheckScratch { a, b } = scratch;
        let (mut current, mut spare): (&mut SupportSet, &mut SupportSet) = (a, b);
        // Leftmost support set of e1..e_slot ◦ e'.
        if slot == 0 {
            self.sc.initial_support_set_into(event, current);
        } else {
            let prefix = prefix_stack.get(slot - 1)?;
            self.sc
                .instance_growth_into(prefix, event, target_usize, current);
        }
        if current.support() < target {
            return None;
        }
        // Grow the remaining suffix e_{slot+1}..e_m.
        for &suffix_event in pattern.events().get(slot..).unwrap_or(&[]) {
            self.sc
                .instance_growth_into(current, suffix_event, target_usize, spare);
            std::mem::swap(&mut current, &mut spare);
            if current.support() < target {
                return None;
            }
        }
        debug_assert_eq!(
            current.support(),
            target,
            "supersequence support exceeds target"
        );
        Some(current)
    }
}

/// Condition (ii) of Theorem 5: the leftmost support set of the extension
/// ends, instance by instance in right-shift order, no later than the
/// leftmost support set of the pattern.
///
/// Both sets have the same size and, because per-sequence maximum
/// non-overlapping counts are monotone, the same number of instances per
/// sequence, so pairing by rank is well defined.
fn landmark_border_holds(extension: &SupportSet, pattern_support: &SupportSet) -> bool {
    debug_assert_eq!(extension.support(), pattern_support.support());
    extension
        .last_positions()
        .zip(pattern_support.last_positions())
        .all(|((ext_seq, ext_last), (pat_seq, pat_last))| {
            ext_seq == pat_seq && ext_last <= pat_last
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsgrow::frequent_events;
    use seqdb::SequenceDatabase;

    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    fn checker_fixture(db: &SequenceDatabase, min_sup: u64) -> (SupportComputer<'_>, Vec<EventId>) {
        let sc = SupportComputer::new(db);
        let events = frequent_events(&sc, db, min_sup);
        (sc, events)
    }

    fn prefix_stack(sc: &SupportComputer<'_>, pattern: &Pattern) -> Vec<SupportSet> {
        (1..=pattern.len())
            .map(|len| sc.support_set(&pattern.prefix(len)))
            .collect()
    }

    #[test]
    fn example_3_6_aa_is_pruned_by_landmark_border_checking() {
        // AA has the equal-support extension ACA whose leftmost support set
        // ends at positions {4, 5, 7}, no later than AA's {4, 5, 7}: prune.
        let db = running_example();
        let (sc, events) = checker_fixture(&db, 3);
        let checker = ClosureChecker::new(&sc, &events);
        let aa = Pattern::new(db.pattern_from_str("AA").unwrap());
        let stack = prefix_stack(&sc, &aa);
        assert_eq!(
            checker.check(&aa, &stack, false, &mut CheckScratch::new()),
            ClosureStatus::Prune
        );
    }

    #[test]
    fn example_3_5_ab_is_non_closed_but_not_prunable() {
        // ACB has the same support as AB but its instances end strictly
        // later (6 > 2 and 9 > 6), so AB must still be grown (ABD is closed).
        let db = running_example();
        let (sc, events) = checker_fixture(&db, 3);
        let checker = ClosureChecker::new(&sc, &events);
        let ab = Pattern::new(db.pattern_from_str("AB").unwrap());
        let stack = prefix_stack(&sc, &ab);
        assert_eq!(
            checker.check(&ab, &stack, false, &mut CheckScratch::new()),
            ClosureStatus::NonClosed
        );
    }

    #[test]
    fn append_extension_marks_non_closed_via_flag() {
        // In Table II's database, sup(AB) = sup(ABC) = 4: the equal-support
        // extension is an append, reported through the flag.
        let db = SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"]);
        let (sc, events) = checker_fixture(&db, 4);
        let checker = ClosureChecker::new(&sc, &events);
        let ab = Pattern::new(db.pattern_from_str("AB").unwrap());
        let stack = prefix_stack(&sc, &ab);
        assert_eq!(
            checker.check(&ab, &stack, true, &mut CheckScratch::new()),
            ClosureStatus::NonClosed
        );
    }

    #[test]
    fn closed_pattern_is_reported_closed() {
        let db = running_example();
        let (sc, events) = checker_fixture(&db, 3);
        let checker = ClosureChecker::new(&sc, &events);
        // ABD is closed in the running example (support 3, no equal-support
        // extension).
        let abd = Pattern::new(db.pattern_from_str("ABD").unwrap());
        let stack = prefix_stack(&sc, &abd);
        assert_eq!(
            checker.check(&abd, &stack, false, &mut CheckScratch::new()),
            ClosureStatus::Closed
        );
    }

    #[test]
    fn extension_support_matches_direct_computation() {
        let db = running_example();
        let (sc, events) = checker_fixture(&db, 3);
        let checker = ClosureChecker::new(&sc, &events);
        let aa = Pattern::new(db.pattern_from_str("AA").unwrap());
        let stack = prefix_stack(&sc, &aa);
        let c = db.catalog().id("C").unwrap();
        let mut scratch = CheckScratch::new();
        // Inserting C at slot 1 yields ACA with support 3 = sup(AA).
        let direct = sc.support_set(&Pattern::new(db.pattern_from_str("ACA").unwrap()));
        let ext = checker
            .extension_support(&aa, &stack, 1, c, 3, &mut scratch)
            .expect("ACA has equal support");
        assert_eq!(ext.support(), 3);
        assert_eq!(ext, &direct);
        // Inserting D at slot 1 yields ADA with support < 3: rejected.
        let d = db.catalog().id("D").unwrap();
        assert!(checker
            .extension_support(&aa, &stack, 1, d, 3, &mut scratch)
            .is_none());
    }

    #[test]
    fn landmark_border_comparison_is_pairwise() {
        let db = running_example();
        let sc = SupportComputer::new(&db);
        let aa = sc.support_set(&Pattern::new(db.pattern_from_str("AA").unwrap()));
        let aca = sc.support_set(&Pattern::new(db.pattern_from_str("ACA").unwrap()));
        let ab = sc.support_set(&Pattern::new(db.pattern_from_str("AB").unwrap()));
        let acb = sc.support_set(&Pattern::new(db.pattern_from_str("ACB").unwrap()));
        assert!(landmark_border_holds(&aca, &aa));
        assert!(!landmark_border_holds(&acb, &ab));
    }
}
