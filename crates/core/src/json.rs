//! Minimal hand-rolled JSON writing helpers.
//!
//! The workspace is fully offline (no serde); every crate that emits JSON
//! — the bench reports, the CLI's `--format json` mode — shares these
//! helpers so string escaping exists exactly once.

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_characters() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }
}
