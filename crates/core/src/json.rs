//! Minimal hand-rolled JSON helpers: escaping for writers, and a small
//! recursive-descent parser for readers.
//!
//! The workspace is fully offline (no serde); every crate that emits JSON
//! — the bench reports, the CLI's `--format json` mode — shares these
//! helpers so string escaping exists exactly once. The serve layer's wire
//! protocol reads request bodies through [`parse`], which accepts the full
//! JSON grammar (RFC 8259) with a recursion-depth limit and reports errors
//! with a byte offset, so a malformed request turns into a structured 400
//! instead of a panic.

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Maximum nesting depth [`parse`] accepts before rejecting the document —
/// deep enough for any request this workspace exchanges, shallow enough
/// that hostile input cannot exhaust the stack.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON document.
///
/// Objects keep their members as an ordered `Vec` (insertion order, with
/// [`Value::get`] returning the first match on duplicates) — the consumers
/// here iterate members to reject unknown fields, so a map would buy
/// nothing.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (integers are exact up to 2^53).
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact non-negative integer: `Some` only for a
    /// number with no fractional part in `[0, 2^53]` (beyond which `f64`
    /// cannot represent every integer, so "exact" would be a lie).
    pub fn as_u64(&self) -> Option<u64> {
        const EXACT_MAX: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Value::Num(n) if n.fract() == 0.0 && (0.0..=EXACT_MAX).contains(n) => {
                // In range and integral (checked above), so the cast is exact.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Why a document failed to parse: a byte offset into the input and a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong there.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing data after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value, ParseError> {
        let end = self.pos + literal.len();
        if self.bytes.get(self.pos..end) == Some(literal.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.error(format!("expected '{literal}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected byte {other:#04x}"))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy one whole UTF-8 scalar (the input is a &str, so
                    // char boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let Ok(text) = std::str::from_utf8(rest) else {
                        return Err(self.error("invalid UTF-8 in string"));
                    };
                    let Some(c) = text.chars().next() else {
                        return Err(self.error("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// The four hex digits after `\u`, combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let first = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require an immediately following \uXXXX low
            // surrogate and combine.
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(self.error("high surrogate not followed by a low surrogate"));
            }
            self.pos += 2;
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.error("invalid low surrogate"));
            }
            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.error("escape is not a Unicode scalar"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.error("expected four hex digits")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone 0, or a nonzero digit run (no leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The span is ASCII digits/signs by construction, so from_utf8 holds.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let parsed: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        if !parsed.is_finite() {
            return Err(self.error("number overflows f64"));
        }
        Ok(Value::Num(parsed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_characters() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parses_every_value_kind() {
        let doc = parse(
            r#"{"null": null, "t": true, "f": false, "n": -2.5e1,
               "s": "hé\"\\\n\u0041\u00e9", "a": [1, 2, 3], "o": {"k": 0}}"#,
        )
        .expect("valid document");
        assert!(doc.get("null").unwrap().is_null());
        assert_eq!(doc.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("f").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(-25.0));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("hé\"\\\nAé"));
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.iter().filter_map(Value::as_u64).sum::<u64>(), 6);
        assert_eq!(doc.get("o").unwrap().get("k").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn object_member_order_is_preserved() {
        let doc = parse(r#"{"b": 1, "a": 2, "b": 3}"#).expect("valid");
        let keys: Vec<&str> = doc
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["b", "a", "b"]);
        // First match wins on duplicates.
        assert_eq!(doc.get("b").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn exact_integer_extraction_rejects_fractions_and_negatives() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.0").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn surrogate_pairs_combine() {
        assert_eq!(
            parse(r#""\ud83e\udd80""#).unwrap().as_str(),
            Some("\u{1f980}")
        );
        assert!(parse(r#""\ud83e""#).is_err());
        assert!(parse(r#""\udd80""#).is_err());
    }

    #[test]
    fn malformed_documents_report_an_offset() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "01",
            "1.",
            "1e",
            "\"\x01\"",
            "{\"a\" 1}",
            "[1] extra",
            "nullnull",
            "+1",
            "'s'",
        ] {
            let err = parse(bad).expect_err(bad);
            assert!(err.offset <= bad.len(), "{bad:?}: {err}");
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn escape_and_parse_round_trip() {
        for s in ["plain", "a\"b\\c", "line\nbreak", "\u{1}\u{1f980}é"] {
            assert_eq!(parse(&escape(s)).unwrap().as_str(), Some(s));
        }
    }
}
