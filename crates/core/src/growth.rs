//! Instance growth (`INSgrow`, Algorithm 2) and repetitive support
//! computation (`supComp`, Algorithm 1).
//!
//! The instance-growth operation takes the leftmost support set of a pattern
//! `P` and an event `e` and extends it, greedily and in right-shift order,
//! into the leftmost support set of `P ◦ e`. The paper proves (Lemma 4) that
//! this greedy extension yields a *maximum-size* non-redundant instance set,
//! so the size of the result is exactly the repetitive support of `P ◦ e`.
//!
//! The growth step itself is delegated to [`crate::kernel`], which resolves
//! each posting row once per extension pass and — since the vectorization
//! pass — walks the per-sequence lanes through the tiered block/batch/serial
//! kernels over [`seqdb::simd`]. This module owns the *semantics* (which
//! instances to grow, in what order, into which support set); the kernel
//! owns the *mechanics* of finding each lane's next admissible position.

use seqdb::{EventId, InvertedIndex, SequenceDatabase, ShardedIndex};

use crate::instance::{Instance, Landmark};
use crate::kernel;
use crate::pattern::Pattern;
use crate::support::{reconstruct_landmarks_impl, SupportSet};

/// A reusable handle bundling a database with its inverted index.
///
/// Building the inverted index costs one pass over the data; a
/// `SupportComputer` lets callers amortize that cost across many support
/// queries (the miners build one internally). The index can be owned
/// ([`SupportComputer::new`], [`SupportComputer::with_index`]) or borrowed
/// from a longer-lived snapshot such as a
/// [`PreparedDb`](crate::PreparedDb) ([`SupportComputer::borrowed`], O(1)).
///
/// Since the sharding refactor the index is a [`ShardedIndex`]: one CSR
/// index per shard, queried through global sequence ids. A single-shard
/// index routes with zero overhead, and a multi-shard one returns
/// bit-identical answers (posting lists are the same rows, split), so every
/// support computation — and therefore every mining mode — is oblivious to
/// the partition.
#[derive(Debug)]
pub struct SupportComputer<'a> {
    db: &'a SequenceDatabase,
    index: IndexHandle<'a>,
}

/// Owned-or-borrowed storage for the (sharded) inverted index.
#[derive(Debug)]
enum IndexHandle<'a> {
    Owned(ShardedIndex),
    Borrowed(&'a ShardedIndex),
}

impl<'a> SupportComputer<'a> {
    /// Builds the inverted index for `db` and wraps both.
    pub fn new(db: &'a SequenceDatabase) -> Self {
        Self {
            index: IndexHandle::Owned(ShardedIndex::single(db.inverted_index())),
            db,
        }
    }

    /// Wraps a database together with a pre-built flat index (treated as a
    /// single shard).
    pub fn with_index(db: &'a SequenceDatabase, index: InvertedIndex) -> Self {
        Self {
            db,
            index: IndexHandle::Owned(ShardedIndex::single(index)),
        }
    }

    /// Wraps a database together with a borrowed pre-built index — O(1), no
    /// index construction. This is how queries share the index owned by a
    /// [`PreparedDb`](crate::PreparedDb).
    pub fn borrowed(db: &'a SequenceDatabase, index: &'a ShardedIndex) -> Self {
        Self {
            db,
            index: IndexHandle::Borrowed(index),
        }
    }

    /// The underlying database.
    pub fn database(&self) -> &SequenceDatabase {
        self.db
    }

    /// The underlying (sharded) inverted index.
    pub fn index(&self) -> &ShardedIndex {
        match &self.index {
            IndexHandle::Owned(index) => index,
            IndexHandle::Borrowed(index) => index,
        }
    }

    /// The leftmost support set of the single-event pattern `event`: every
    /// occurrence of the event, in position order (line 1 of Algorithm 1 and
    /// line 3 of Algorithm 3).
    pub fn initial_support_set(&self, event: EventId) -> SupportSet {
        let mut set = SupportSet::new();
        self.initial_support_set_into(event, &mut set);
        set
    }

    /// [`Self::initial_support_set`] writing into a caller-provided set
    /// whose allocation is reused (cleared first).
    pub fn initial_support_set_into(&self, event: EventId, out: &mut SupportSet) {
        out.clear();
        for (seq, positions) in self.index().sequences_with_event(event) {
            for &pos in positions {
                out.push(Instance::new(seq as u32, pos, pos));
            }
        }
    }

    /// The fragment of [`Self::initial_support_set`] contributed by one
    /// shard: every occurrence of `event` inside `shard`'s sequence range,
    /// with **global** sequence ids. Fragments concatenated in shard order
    /// are exactly the full initial support set — this per-`(seed, shard)`
    /// unit is what the two-level parallel work queue fans out.
    pub fn initial_support_fragment_into(
        &self,
        event: EventId,
        shard: usize,
        out: &mut SupportSet,
    ) {
        out.clear();
        for (seq, positions) in self.index().shard_sequences_with_event(shard, event) {
            for &pos in positions {
                out.push(Instance::new(seq as u32, pos, pos));
            }
        }
    }

    /// `INSgrow(SeqDB, P, I, e)` (Algorithm 2): extends the leftmost support
    /// set `support` of a pattern `P` into the leftmost support set of
    /// `P ◦ event`.
    ///
    /// The pattern itself is not needed: the compressed instances carry all
    /// the state the greedy extension requires (`last` positions).
    pub fn instance_growth(&self, support: &SupportSet, event: EventId) -> SupportSet {
        self.instance_growth_bounded(support, event, usize::MAX)
    }

    /// [`Self::instance_growth`] with an early-exit bound used by the
    /// closure-checking machinery: growing stops as soon as it becomes
    /// impossible to reach `target` instances, i.e. when
    /// `grown_so_far + remaining_inputs < target`.
    ///
    /// With `target = usize::MAX` this is exactly Algorithm 2.
    pub fn instance_growth_bounded(
        &self,
        support: &SupportSet,
        event: EventId,
        target: usize,
    ) -> SupportSet {
        let mut grown = SupportSet::new();
        self.instance_growth_into(support, event, target, &mut grown);
        grown
    }

    /// [`Self::instance_growth_bounded`] writing into a caller-provided set:
    /// `out` is cleared (its allocation is kept) and refilled, so a warm
    /// buffer makes the growth step allocation-free. This is the form every
    /// mining core calls in its hot loop, recycling sets through the
    /// crate-internal `SetPool`.
    pub fn instance_growth_into(
        &self,
        support: &SupportSet,
        event: EventId,
        target: usize,
        out: &mut SupportSet,
    ) {
        out.clear();
        // One fused pass: each `(sequence, event)` posting row is resolved
        // once, the cursor advances through the sequence's whole run
        // (gallop + branch-free search), and run boundaries are detected
        // inline instead of by a separate pre-scan.
        kernel::grow_unconstrained(self.index(), event, support.instances(), target, out);
    }

    /// `supComp(SeqDB, P)` (Algorithm 1): the leftmost support set of an
    /// arbitrary pattern, computed by chaining instance growth from the
    /// pattern's first event.
    pub fn support_set(&self, pattern: &Pattern) -> SupportSet {
        let events = pattern.events();
        let Some((&first, rest)) = events.split_first() else {
            return SupportSet::new();
        };
        // Double-buffered growth chain: two sets total, regardless of the
        // pattern length.
        let mut support = self.initial_support_set(first);
        let mut spare = SupportSet::new();
        for &event in rest {
            if support.is_empty() {
                return support;
            }
            self.instance_growth_into(&support, event, usize::MAX, &mut spare);
            std::mem::swap(&mut support, &mut spare);
        }
        support
    }

    /// The repetitive support `sup(P)` (Definition 2.5).
    pub fn support(&self, pattern: &Pattern) -> u64 {
        self.support_set(pattern).support()
    }

    /// The leftmost support set with full landmarks (positions of every
    /// pattern event), for reporting and verification.
    pub fn support_landmarks(&self, pattern: &Pattern) -> Vec<Landmark> {
        reconstruct_landmarks_impl(self.index(), pattern)
    }
}

/// A free-list of [`SupportSet`]s recycled across instance-growth steps.
///
/// The DFS miners allocate one support set per *attempted* growth; most
/// attempts fail the threshold and the set is discarded immediately. The
/// pool keeps those discarded sets (allocation and all) and hands them back
/// on the next attempt, so steady-state mining performs zero per-step heap
/// allocations — the property pinned by the counting-allocator test.
#[derive(Debug, Default)]
pub(crate) struct SetPool {
    free: Vec<SupportSet>,
}

impl SetPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared set from the pool, or a fresh one when empty.
    pub fn take(&mut self) -> SupportSet {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a set to the pool for reuse (cleared, capacity kept).
    pub fn give(&mut self, mut set: SupportSet) {
        set.clear();
        self.free.push(set);
    }
}

/// Convenience wrapper: computes `sup(P)` for a pattern given as raw event
/// ids, building a temporary index.
///
/// Prefer [`SupportComputer`] when issuing many queries against the same
/// database.
pub fn repetitive_support(db: &SequenceDatabase, pattern: &[EventId]) -> u64 {
    SupportComputer::new(db).support(&Pattern::new(pattern.to_vec()))
}

/// Convenience wrapper: the leftmost support set of `pattern` (compressed
/// instances), building a temporary index.
pub fn support_set(db: &SequenceDatabase, pattern: &[EventId]) -> SupportSet {
    SupportComputer::new(db).support_set(&Pattern::new(pattern.to_vec()))
}

/// Convenience wrapper: one instance-growth step on a caller-provided
/// support set (Algorithm 2), building a temporary index.
pub fn instance_growth(db: &SequenceDatabase, support: &SupportSet, event: EventId) -> SupportSet {
    SupportComputer::new(db).instance_growth(support, event)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table III: S1 = ABCACBDDB, S2 = ACDBACADD.
    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    /// Table II: S1 = ABCABCA, S2 = AABBCCC.
    fn simple_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"])
    }

    fn pattern(db: &SequenceDatabase, s: &str) -> Pattern {
        Pattern::new(db.pattern_from_str(s).unwrap())
    }

    #[test]
    fn table_iv_instance_growth_from_a_to_acb() {
        // Reproduces Table IV column by column.
        let db = running_example();
        let sc = SupportComputer::new(&db);
        let a = db.catalog().id("A").unwrap();
        let c = db.catalog().id("C").unwrap();
        let b = db.catalog().id("B").unwrap();

        let i_a = sc.initial_support_set(a);
        assert_eq!(i_a.support(), 5, "sup(A) = 5");
        assert_eq!(
            i_a.instances(),
            &[
                Instance::new(0, 1, 1),
                Instance::new(0, 4, 4),
                Instance::new(1, 1, 1),
                Instance::new(1, 5, 5),
                Instance::new(1, 7, 7),
            ]
        );

        let i_ac = sc.instance_growth(&i_a, c);
        assert_eq!(i_ac.support(), 4, "sup(AC) = 4");
        assert_eq!(
            i_ac.instances(),
            &[
                Instance::new(0, 1, 3),
                Instance::new(0, 4, 5),
                Instance::new(1, 1, 2),
                Instance::new(1, 5, 6),
            ]
        );

        let i_acb = sc.instance_growth(&i_ac, b);
        assert_eq!(i_acb.support(), 3, "sup(ACB) = 3");
        assert_eq!(
            i_acb.instances(),
            &[
                Instance::new(0, 1, 6),
                Instance::new(0, 4, 9),
                Instance::new(1, 1, 4),
            ]
        );
    }

    #[test]
    fn example_3_1_step_3_prime_aca() {
        let db = running_example();
        let sc = SupportComputer::new(&db);
        let aca = pattern(&db, "ACA");
        assert_eq!(sc.support(&aca), 3);
        let landmarks = sc.support_landmarks(&aca);
        assert_eq!(
            landmarks,
            vec![
                Landmark::new(0, vec![1, 3, 4]),
                Landmark::new(1, vec![1, 2, 5]),
                Landmark::new(1, vec![5, 6, 7]),
            ]
        );
    }

    #[test]
    fn example_2_2_supports_on_the_simple_database() {
        // sup(AB) = 4 and sup(ABA) = 2 in Table II's database.
        let db = simple_example();
        let sc = SupportComputer::new(&db);
        assert_eq!(sc.support(&pattern(&db, "AB")), 4);
        assert_eq!(sc.support(&pattern(&db, "ABA")), 2);
        // Example 2.3: sup(ABC) = 4 as well (AB is therefore not closed).
        assert_eq!(sc.support(&pattern(&db, "ABC")), 4);
    }

    #[test]
    fn example_1_1_motivating_supports() {
        let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
        let sc = SupportComputer::new(&db);
        assert_eq!(sc.support(&pattern(&db, "AB")), 4);
        assert_eq!(sc.support(&pattern(&db, "CD")), 2);
    }

    #[test]
    fn example_3_5_ab_and_acb_have_equal_support() {
        let db = running_example();
        let sc = SupportComputer::new(&db);
        assert_eq!(sc.support(&pattern(&db, "AB")), 3);
        assert_eq!(sc.support(&pattern(&db, "ACB")), 3);
        assert_eq!(sc.support(&pattern(&db, "ABD")), 3);
        // The leftmost support set of AB quoted in Example 3.5.
        let ab_landmarks = sc.support_landmarks(&pattern(&db, "AB"));
        assert_eq!(
            ab_landmarks,
            vec![
                Landmark::new(0, vec![1, 2]),
                Landmark::new(0, vec![4, 6]),
                Landmark::new(1, vec![1, 4]),
            ]
        );
    }

    #[test]
    fn example_3_6_aa_aca_and_aad() {
        let db = running_example();
        let sc = SupportComputer::new(&db);
        assert_eq!(sc.support(&pattern(&db, "AA")), 3);
        assert_eq!(sc.support(&pattern(&db, "ACA")), 3);
        assert_eq!(sc.support(&pattern(&db, "AAD")), 3);
        assert_eq!(sc.support(&pattern(&db, "ACAD")), 3);
        let aa_landmarks = sc.support_landmarks(&pattern(&db, "AA"));
        assert_eq!(
            aa_landmarks,
            vec![
                Landmark::new(0, vec![1, 4]),
                Landmark::new(1, vec![1, 5]),
                Landmark::new(1, vec![5, 7]),
            ]
        );
        let aad_landmarks = sc.support_landmarks(&pattern(&db, "AAD"));
        assert_eq!(
            aad_landmarks,
            vec![
                Landmark::new(0, vec![1, 4, 7]),
                Landmark::new(1, vec![1, 5, 8]),
                Landmark::new(1, vec![5, 7, 9]),
            ]
        );
    }

    #[test]
    fn long_pattern_over_counting_is_avoided() {
        // The paper motivates non-overlap with SeqDB = {AABBCC...ZZ}:
        // with repetitive support, sup(AB) = 2 (not 4) and sup(ABC) = 2.
        let alphabet: String = ('A'..='Z').flat_map(|c| [c, c]).collect();
        let db = SequenceDatabase::from_str_rows(&[alphabet.as_str()]);
        let sc = SupportComputer::new(&db);
        assert_eq!(sc.support(&pattern(&db, "AB")), 2);
        assert_eq!(sc.support(&pattern(&db, "ABC")), 2);
        let abcz: String = ('A'..='Z').collect();
        let full = Pattern::new(db.pattern_from_str(&abcz).unwrap());
        assert_eq!(sc.support(&full), 2);
    }

    #[test]
    fn unknown_or_empty_patterns_have_zero_support() {
        let db = simple_example();
        let sc = SupportComputer::new(&db);
        assert_eq!(sc.support(&Pattern::empty()), 0);
        // An event id that never occurs.
        let ghost = Pattern::single(EventId(77));
        assert_eq!(sc.support(&ghost), 0);
        // A pattern that starts fine but cannot be completed.
        let impossible = Pattern::new(vec![
            db.catalog().id("C").unwrap(),
            db.catalog().id("C").unwrap(),
            db.catalog().id("C").unwrap(),
            db.catalog().id("C").unwrap(),
        ]);
        assert_eq!(sc.support(&impossible), 0);
    }

    #[test]
    fn convenience_wrappers_agree_with_support_computer() {
        let db = running_example();
        let acb = db.pattern_from_str("ACB").unwrap();
        assert_eq!(repetitive_support(&db, &acb), 3);
        assert_eq!(support_set(&db, &acb).support(), 3);
        let sc = SupportComputer::new(&db);
        let i_ac = sc.support_set(&pattern(&db, "AC"));
        let grown = instance_growth(&db, &i_ac, db.catalog().id("B").unwrap());
        assert_eq!(grown.support(), 3);
    }

    #[test]
    fn bounded_growth_never_underreports_when_target_is_reachable() {
        let db = running_example();
        let sc = SupportComputer::new(&db);
        let i_ac = sc.support_set(&pattern(&db, "AC"));
        let b = db.catalog().id("B").unwrap();
        let unbounded = sc.instance_growth(&i_ac, b);
        let bounded = sc.instance_growth_bounded(&i_ac, b, unbounded.instances().len());
        assert_eq!(bounded.support(), unbounded.support());
    }

    #[test]
    fn apriori_monotonicity_on_the_running_example() {
        // Every prefix has support >= the full pattern (Lemma 1 restricted
        // to prefixes, which is what the DFS relies on).
        let db = running_example();
        let sc = SupportComputer::new(&db);
        for s in ["A", "AC", "ACB", "ACBD", "AAD", "ACAD", "ABDD"] {
            let pat = pattern(&db, s);
            let mut prev = u64::MAX;
            for len in 1..=pat.len() {
                let sup = sc.support(&pat.prefix(len));
                assert!(sup <= prev, "support must not increase along prefixes");
                prev = sup;
            }
        }
    }
}
