//! Parallel execution: a two-level (shard × seed) work queue feeding
//! deterministic seed-order merges.
//!
//! Every miner in this crate shares the same outer loop: for each frequent
//! single event (the *seed*), mine the DFS subtree rooted at it. The
//! subtrees are fully independent — they only read the immutable prepared
//! database (flat [`seqdb::SeqStore`] and CSR-index arenas, borrowed as
//! slices through `PreparedRef`, with no per-thread copies; each worker's
//! only mutable state is its own set pool and scratch) — so they can run
//! on any number of threads. Determinism comes from the merge, not the
//! schedule: each worker buffers its per-seed results, and the buffers are
//! reassembled **in seed order**, which is exactly the sequential emission
//! order. The output is therefore bit-identical to a sequential run no
//! matter how many workers raced.
//!
//! # The two levels
//!
//! Under a sharded [`PreparedDb`](crate::PreparedDb) the work decomposes
//! one level further. A seed's *initial support set* is the concatenation,
//! in shard order, of per-shard fragments (every occurrence of the seed
//! inside one shard) — per-`(seed, shard)` units with no mutual
//! dependencies at all, fanned out first by [`fan_out_shard_seeds`]. The
//! *subtree DFS* that consumes the assembled set stays seed-granular by
//! necessity: whether a pattern is grown depends on its support **summed
//! across shards** (the threshold test of Algorithms 3/4), so shards
//! cannot explore the tree independently without approximating — instead
//! every growth step inside a subtree routes its `next` queries through
//! the per-shard indexes and sums exactly. Per-shard index *builds* at
//! prepare time fan out the same way (the shard level with one seed).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Runs `work(seed_index)` for every seed in `0..num_seeds` on up to
/// `threads` scoped workers and returns the results **in seed order**.
///
/// Workers pull seed indices from a shared atomic counter (dynamic
/// load-balancing: seed subtrees are heavily skewed in practice). With
/// `threads <= 1` or a single seed the work runs inline on the caller's
/// thread.
pub(crate) fn fan_out_seeds<R, F>(threads: usize, num_seeds: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.min(num_seeds).max(1);
    if threads <= 1 {
        return (0..num_seeds).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= num_seeds {
                            break;
                        }
                        out.push((i, work(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("mining worker panicked"))
            .collect()
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// The two-level (shard × seed) fan-out: a grid phase computes one
/// *fragment* per `(seed, shard)` pair — `num_seeds * num_shards`
/// independent tasks pulled from one atomic queue — then the seed phase
/// hands each seed its fragments (in shard order) and mines the subtree,
/// with results returned **in seed order**.
///
/// Both phases load-balance dynamically; the barrier between them is what
/// keeps the construction simple and deterministic. The grid phase does
/// hold every seed's fragments at once — the price of cross-seed fragment
/// parallelism — so it only runs when there are actually multiple shards;
/// with one shard (or one thread, or one seed) each seed's fragment is
/// computed inside its own worker, which keeps single-shard parallel runs
/// at the pre-sharding peak memory of O(threads) live support sets.
pub(crate) fn fan_out_shard_seeds<P, R, PF, SF>(
    threads: usize,
    num_shards: usize,
    num_seeds: usize,
    fragment: PF,
    seed_work: SF,
) -> Vec<R>
where
    P: Send,
    R: Send,
    PF: Fn(usize, usize) -> P + Sync,
    SF: Fn(usize, Vec<P>) -> R + Sync,
{
    let num_shards = num_shards.max(1);
    if threads <= 1 || num_seeds <= 1 || num_shards == 1 {
        // Degenerate grid: fragments are computed inside each seed's work
        // unit (inline, or on the seed's worker thread), nothing is
        // buffered across seeds.
        return fan_out_seeds(threads, num_seeds, |seed| {
            let fragments = (0..num_shards).map(|shard| fragment(seed, shard)).collect();
            seed_work(seed, fragments)
        });
    }

    // Grid phase: (seed, shard) pairs in seed-major order — the same
    // atomic-queue fan-out as the seed phase, over `num_seeds * num_shards`
    // tasks, returned in task order.
    let fragments = fan_out_seeds(threads, num_seeds * num_shards, |task| {
        fragment(task / num_shards, task % num_shards)
    });

    // Group the seed-major fragment list into per-seed vectors, handed to
    // the seed phase through take-once cells (each seed consumes its own).
    let mut per_seed: Vec<Mutex<Option<Vec<P>>>> = Vec::with_capacity(num_seeds);
    let mut iter = fragments.into_iter();
    for _ in 0..num_seeds {
        let fragments: Vec<P> = iter.by_ref().take(num_shards).collect();
        per_seed.push(Mutex::new(Some(fragments)));
    }

    fan_out_seeds(threads, num_seeds, |seed| {
        let fragments = per_seed[seed]
            .lock()
            .expect("fragment cell poisoned")
            .take()
            .expect("each seed consumes its fragments exactly once");
        seed_work(seed, fragments)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_seed_order_regardless_of_schedule() {
        for threads in [1, 2, 3, 8, 64] {
            let results = fan_out_seeds(threads, 37, |i| i * i);
            assert_eq!(results, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_seeds_yield_an_empty_result() {
        assert!(fan_out_seeds(4, 0, |i| i).is_empty());
    }

    #[test]
    fn workers_observe_shared_state() {
        use std::sync::atomic::AtomicU64;
        let total = AtomicU64::new(0);
        let results = fan_out_seeds(4, 100, |i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
            i
        });
        assert_eq!(results.len(), 100);
        assert_eq!(total.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn shard_seed_grid_delivers_fragments_in_shard_order() {
        for threads in [1, 2, 5, 16] {
            for shards in [1, 2, 3, 7] {
                let results = fan_out_shard_seeds(
                    threads,
                    shards,
                    9,
                    |seed, shard| (seed, shard),
                    |seed, fragments| {
                        // Every fragment belongs to this seed, in shard order.
                        assert_eq!(
                            fragments,
                            (0..shards).map(|s| (seed, s)).collect::<Vec<_>>()
                        );
                        seed * 10
                    },
                );
                assert_eq!(
                    results,
                    (0..9).map(|s| s * 10).collect::<Vec<_>>(),
                    "{threads} threads x {shards} shards"
                );
            }
        }
    }

    #[test]
    fn shard_seed_grid_handles_empty_and_single_seed_inputs() {
        let empty = fan_out_shard_seeds(4, 3, 0, |_, _| 0, |_, _| 0);
        assert!(empty.is_empty());
        let single = fan_out_shard_seeds(4, 3, 1, |_, shard| shard, |_, frags| frags.len());
        assert_eq!(single, vec![3]);
    }
}
