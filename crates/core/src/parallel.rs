//! First-level parallel execution: deterministic fan-out of DFS seed
//! subtrees across `std::thread::scope` workers.
//!
//! Every miner in this crate shares the same outer loop: for each frequent
//! single event (the *seed*), mine the DFS subtree rooted at it. The
//! subtrees are fully independent — they only read the immutable prepared
//! database (flat [`seqdb::SeqStore`] and CSR-index arenas, borrowed as
//! slices through `PreparedRef`, with no per-thread copies; each worker's
//! only mutable state is its own set pool and scratch) — so they can run
//! on any number of threads. Determinism comes
//! from the merge, not the schedule: each worker buffers its per-seed
//! results, and the buffers are reassembled **in seed order**, which is
//! exactly the sequential emission order. The output is therefore
//! bit-identical to a sequential run no matter how many workers raced.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Runs `work(seed_index)` for every seed in `0..num_seeds` on up to
/// `threads` scoped workers and returns the results **in seed order**.
///
/// Workers pull seed indices from a shared atomic counter (dynamic
/// load-balancing: seed subtrees are heavily skewed in practice). With
/// `threads <= 1` or a single seed the work runs inline on the caller's
/// thread.
pub(crate) fn fan_out_seeds<R, F>(threads: usize, num_seeds: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.min(num_seeds).max(1);
    if threads <= 1 {
        return (0..num_seeds).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= num_seeds {
                            break;
                        }
                        out.push((i, work(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("mining worker panicked"))
            .collect()
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_seed_order_regardless_of_schedule() {
        for threads in [1, 2, 3, 8, 64] {
            let results = fan_out_seeds(threads, 37, |i| i * i);
            assert_eq!(results, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_seeds_yield_an_empty_result() {
        assert!(fan_out_seeds(4, 0, |i| i).is_empty());
    }

    #[test]
    fn workers_observe_shared_state() {
        use std::sync::atomic::AtomicU64;
        let total = AtomicU64::new(0);
        let results = fan_out_seeds(4, 100, |i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
            i
        });
        assert_eq!(results.len(), 100);
        assert_eq!(total.load(Ordering::Relaxed), 4950);
    }
}
