//! Batch execution: one shared DFS serving many mining requests.
//!
//! The growth DFS is anti-monotone in `min_sup` (Theorem 1): the search
//! tree of a request at threshold `t` is a subtree of the search tree at
//! any lower threshold. A whole batch of requests over one
//! [`PreparedDb`](crate::PreparedDb)
//! can therefore be served by a *single* pass at the batch's minimum
//! threshold, with a multiplexing sink that routes every visited pattern to
//! each subscribed request it satisfies.
//!
//! # Grouping rules
//!
//! Requests are grouped by the *shape* of the DFS they need, not by their
//! thresholds:
//!
//! * **All-scan** — the plain GSgrow tree over one [`GapConstraints`]
//!   value. Serves unconstrained `All` streams, constrained `All` streams,
//!   the constrained basis behind constrained `Closed`/`Maximal`/ranked
//!   requests, and the unconstrained TSP-style top-k search (which walks
//!   the same tree with a dynamic per-request threshold).
//! * **Closed-scan** — the CloGSgrow tree (closure checking plus landmark
//!   border pruning), keyed by the pruning ablation switch. Serves
//!   unconstrained `Closed` streams and the closed basis behind
//!   unconstrained `Maximal` and ranked-`Maximal` requests.
//!
//! Within a group the scan runs once at `t_min`, the minimum of the
//! members' effective thresholds. Each member keeps its own per-node
//! "alive" flag: a node is alive for a member exactly when the member's
//! solo DFS would visit it (its support clears the member's threshold along
//! the whole prefix and the member's caps allow the depth). Restricting the
//! shared preorder to a member's alive nodes replays that member's solo run
//! — emissions, truncation, and work counters included — which is what pins
//! batch output bit-identical to the one-by-one loop.
//!
//! # Why shared-floor top-k is sound (and why it is not shared)
//!
//! Top-k members keep *per-member* heaps and dynamic thresholds. Sharing a
//! single floor across subscribers would be unsound: one subscriber's
//! raised k-th-best support would prune subtrees another subscriber (with a
//! smaller `k` satisfied later, or a lower floor) still needs. The shared
//! scan only ever descends a child when *some* member's own threshold
//! admits it, so no member can starve another.
//!
//! # Deadlines
//!
//! Each request may carry its own deadline. Streaming members check it at
//! every emission (exactly where a solo run's `DeadlineSink` sits behind
//! the emission gate) and detach without disturbing their siblings; basis
//! and ranked members observe it at their final drain, again matching the
//! solo path.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use seqdb::EventId;

use crate::closure::{CheckScratch, ClosureChecker, ClosureStatus};
use crate::constrained::ConstrainedSupportComputer;
use crate::constraints::GapConstraints;
use crate::engine::{MiningRequest, Mode};
use crate::growth::{SetPool, SupportComputer};
use crate::maximal::maximal_subset;
use crate::pattern::Pattern;
use crate::prepared::PreparedRef;
use crate::reference::closed_subset;
use crate::result::{sort_patterns_for_report, MinedPattern, MiningOutcome, MiningStats};
use crate::support::SupportSet;

/// The outcome of one request executed through [`crate::PreparedDb::batch`]:
/// the [`MiningOutcome`] a solo [`crate::MiningSession::run`] would produce
/// for the same request, plus the emission-gate bookkeeping a streamed solo
/// run reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MiningResult {
    /// Patterns (in the request's own emission order), work counters, and
    /// the truncation flag — field for field what a solo run returns.
    /// `stats.elapsed_seconds` is the whole batch's wall-clock time.
    pub outcome: MiningOutcome,
    /// Number of patterns that passed this request's emission gate
    /// (the [`crate::MiningReport::emitted`] equivalent).
    pub emitted: usize,
    /// `true` when this request's deadline expired mid-run; its siblings in
    /// the batch are unaffected.
    pub cancelled: bool,
}

/// Executes `requests` against one prepared snapshot, sharing the
/// frequent-event scan and the DFS across compatible requests. `deadlines`
/// is indexed by request slot; missing entries mean no deadline.
///
/// Output contract: `results[i]` is bit-identical (patterns, supports,
/// order, truncation, work counters) to running `requests[i]` solo under
/// sequential execution, except that `elapsed_seconds` covers the whole
/// batch.
pub(crate) fn run_batch(
    prepared: PreparedRef<'_>,
    requests: &[MiningRequest],
    deadlines: &[Option<Instant>],
) -> Vec<MiningResult> {
    let start = Instant::now();
    let mut results: Vec<MiningResult> = requests.iter().map(|_| MiningResult::default()).collect();

    // Group request slots by scan shape (linear scan: batches are small).
    let mut groups: Vec<(ScanKind, Vec<usize>)> = Vec::new();
    for (slot, request) in requests.iter().enumerate() {
        let kind = scan_kind(request);
        if kind == ScanKind::Trivial {
            continue;
        }
        match groups.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, slots)) => slots.push(slot),
            None => groups.push((kind, vec![slot])),
        }
    }

    for (kind, slots) in groups {
        match kind {
            ScanKind::Trivial => {}
            ScanKind::All { constraints } => {
                run_all_scan(
                    prepared,
                    requests,
                    deadlines,
                    constraints,
                    &slots,
                    &mut results,
                );
            }
            ScanKind::Closed { pruning } => {
                run_closed_scan(prepared, requests, deadlines, pruning, &slots, &mut results);
            }
        }
    }

    let elapsed = start.elapsed();
    for result in &mut results {
        result.outcome.stats.set_elapsed(elapsed);
    }
    results
}

/// The DFS shape a request subscribes to. Requests with equal kinds share
/// one scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanKind {
    /// No search at all (ranked with `k == 0`): the solo engine returns an
    /// empty, untruncated result without scanning.
    Trivial,
    /// The GSgrow tree under one constraint set (unbounded constraints are
    /// canonicalized to [`GapConstraints::unbounded`] so equal-meaning
    /// values land in one group).
    All { constraints: GapConstraints },
    /// The CloGSgrow tree, keyed by the landmark-pruning ablation (the
    /// switch changes which nodes the DFS visits).
    Closed { pruning: bool },
}

/// Maps a request onto the scan its solo run executes (mirror of the
/// engine's `run_with_sink`/`collect_ranked` dispatch).
fn scan_kind(request: &MiningRequest) -> ScanKind {
    let unbounded = request.constraints.is_unbounded();
    let constraints = if unbounded {
        GapConstraints::unbounded()
    } else {
        request.constraints
    };
    if request.is_ranked() {
        if request.effective_k() == 0 {
            return ScanKind::Trivial;
        }
        if unbounded && request.base_mode() != Mode::Maximal {
            // TSP-style top-k walks the plain GSgrow tree with its own
            // dynamic threshold.
            return ScanKind::All { constraints };
        }
        if unbounded {
            // Ranked maximal: ranked filter over the closed basis.
            return ScanKind::Closed {
                pruning: request.use_landmark_pruning,
            };
        }
        // Constrained ranked (any base): ranked filter over the
        // constrained-frequent basis.
        return ScanKind::All { constraints };
    }
    match (request.base_mode(), unbounded) {
        (Mode::All, _) => ScanKind::All { constraints },
        (Mode::Closed | Mode::Maximal | Mode::TopK, true) => ScanKind::Closed {
            pruning: request.use_landmark_pruning,
        },
        // Constrained closed/maximal: filter the constrained-frequent set
        // (Theorem 5 pruning is unsound under constraints).
        (Mode::Closed | Mode::Maximal | Mode::TopK, false) => ScanKind::All { constraints },
    }
}

/// How a basis member's collected patterns become its final output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankedFilter {
    AsIs,
    Closed,
    Maximal,
    ClosedThenMaximal,
}

/// What happens to a basis member's collected patterns at finish time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BasisFinish {
    /// Non-ranked closed-under-constraints: `closed_subset` then drain.
    Closed,
    /// Non-ranked maximal: `maximal_subset` then drain.
    Maximal,
    /// Ranked: filter, `min_len` retain, report sort, truncate to `k`.
    Ranked { k: usize, filter: RankedFilter },
}

/// A member's role in the shared scan.
enum Shape {
    /// Streams through the emission gate at every alive node (solo
    /// streaming modes: unconstrained `All`/`Closed`, constrained `All`).
    Stream,
    /// Collects a basis (no `min_len` filter, cap mid-search) and filters
    /// at finish time (solo basis modes: maximal, constrained closed /
    /// maximal, ranked-over-basis).
    Basis {
        collected: Vec<MinedPattern>,
        truncated: bool,
        finish: BasisFinish,
    },
    /// Per-member TSP-style top-k with its own heap and dynamic threshold
    /// (solo `run_top_k`).
    TopK {
        k: usize,
        closed_only: bool,
        heap: BinaryHeap<Reverse<u64>>,
        collected: Vec<MinedPattern>,
    },
}

/// Maps a request onto its member role within its scan group.
fn member_shape(request: &MiningRequest) -> Shape {
    let unbounded = request.constraints.is_unbounded();
    if request.is_ranked() {
        let k = request.effective_k();
        if unbounded && request.base_mode() != Mode::Maximal {
            return Shape::TopK {
                k,
                closed_only: request.base_mode() == Mode::Closed,
                heap: BinaryHeap::new(),
                collected: Vec::new(),
            };
        }
        let filter = match (request.base_mode(), unbounded) {
            (Mode::All, _) => RankedFilter::AsIs,
            (Mode::Closed | Mode::TopK, _) => RankedFilter::Closed,
            (Mode::Maximal, true) => RankedFilter::Maximal,
            (Mode::Maximal, false) => RankedFilter::ClosedThenMaximal,
        };
        return Shape::Basis {
            collected: Vec::new(),
            truncated: false,
            finish: BasisFinish::Ranked { k, filter },
        };
    }
    match (request.base_mode(), unbounded) {
        (Mode::All, _) | (Mode::Closed | Mode::TopK, true) => Shape::Stream,
        (Mode::Maximal, _) => Shape::Basis {
            collected: Vec::new(),
            truncated: false,
            finish: BasisFinish::Maximal,
        },
        (Mode::Closed | Mode::TopK, false) => Shape::Basis {
            collected: Vec::new(),
            truncated: false,
            finish: BasisFinish::Closed,
        },
    }
}

/// One request's subscription to a shared scan: its thresholds and caps,
/// its private emission gate, and its work counters.
struct Member {
    /// Index into `requests`/`results`.
    slot: usize,
    /// Effective support threshold: `min_sup.max(1)` (the top-k floor for
    /// [`Shape::TopK`] members).
    floor: u64,
    min_len: usize,
    keep: bool,
    /// `max_patterns` — the uniform emission cap.
    cap: Option<usize>,
    /// `max_pattern_length` — the DFS depth cap.
    max_len: Option<usize>,
    deadline: Option<Instant>,
    /// `eligible[i]` — whether scan event `i` is frequent at this member's
    /// own floor, i.e. whether the event is in the member's solo candidate
    /// list.
    eligible: Vec<bool>,
    /// Number of `true` entries in `eligible`.
    eligible_count: u64,
    /// Set when the member's solo run would have stopped scanning (cap hit
    /// or deadline expired mid-stream).
    detached: bool,
    stats: MiningStats,
    emitted: usize,
    truncated: bool,
    cancelled: bool,
    /// Patterns that passed the emission gate, in emission order.
    out: Vec<MinedPattern>,
    shape: Shape,
}

impl Member {
    fn new(slot: usize, request: &MiningRequest, deadline: Option<Instant>) -> Member {
        Member {
            slot,
            floor: request.min_sup.max(1),
            min_len: request.min_len,
            keep: request.keep_support_sets,
            cap: request.max_patterns,
            max_len: request.max_pattern_length,
            deadline,
            eligible: Vec::new(),
            eligible_count: 0,
            detached: false,
            stats: MiningStats::default(),
            emitted: 0,
            truncated: false,
            cancelled: false,
            out: Vec::new(),
            shape: member_shape(request),
        }
    }

    /// Whether the member's DFS may grow a pattern of length `len`.
    fn allows_growth(&self, len: usize) -> bool {
        self.max_len.is_none_or(|max| len < max)
    }

    /// Whether scan event `i` is in this member's solo candidate list.
    fn eligible_at(&self, i: usize) -> bool {
        self.eligible.get(i).copied().unwrap_or(false)
    }

    /// The member's dynamic top-k threshold (solo `TopKState::threshold`);
    /// the plain floor for non-top-k members.
    fn topk_threshold(&self) -> u64 {
        let Shape::TopK { k, heap, .. } = &self.shape else {
            return self.floor;
        };
        if heap.len() < *k {
            self.floor
        } else {
            heap.peek()
                .map(|&Reverse(s)| s)
                .unwrap_or(self.floor)
                .max(self.floor)
        }
    }

    /// The emission gate (solo `EmitGate::forward` with the deadline sink
    /// inlined). Returns `true` when the member must stop receiving.
    fn gate_forward(&mut self, mined: MinedPattern) -> bool {
        self.emitted += 1;
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            // A solo DeadlineSink drops the pattern and cancels the run.
            self.cancelled = true;
            return true;
        }
        self.out.push(mined);
        if self.cap.is_some_and(|cap| self.emitted >= cap) {
            self.truncated = true;
            return true;
        }
        false
    }

    /// Streaming emission point (solo `EmitGate::emit`): `min_len` filter,
    /// support-set retention, then the gate. A stop detaches the member
    /// from the rest of the scan.
    fn gate_emit(&mut self, pattern: &Pattern, support: &SupportSet) {
        if pattern.len() < self.min_len {
            return;
        }
        let mut mined = MinedPattern::new(pattern.clone(), support.support());
        if self.keep {
            mined.support_set = Some(support.clone());
        }
        if self.gate_forward(mined) {
            self.detached = true;
        }
    }

    /// Drains a pre-collected list through the gate (solo
    /// `EmitGate::drain`).
    fn gate_drain(&mut self, patterns: Vec<MinedPattern>) {
        for mined in patterns {
            if mined.pattern.len() < self.min_len {
                continue;
            }
            if self.gate_forward(mined) {
                break;
            }
        }
    }

    /// Basis collection point (solo `Collector::emit`): no `min_len`
    /// filter, cap applied mid-search. A full basis detaches the member.
    fn collect_basis(&mut self, pattern: &Pattern, support: &SupportSet) {
        let mut mined = MinedPattern::new(pattern.clone(), support.support());
        if self.keep {
            mined.support_set = Some(support.clone());
        }
        let cap = self.cap;
        let Shape::Basis {
            collected,
            truncated,
            ..
        } = &mut self.shape
        else {
            return;
        };
        collected.push(mined);
        if cap.is_some_and(|c| collected.len() >= c) {
            *truncated = true;
            self.detached = true;
        }
    }

    /// Finishes the member after its scan: applies the basis filter or the
    /// top-k sort, drains through the gate, and writes the result slot.
    fn finish(&mut self, results: &mut [MiningResult]) {
        let shape = std::mem::replace(&mut self.shape, Shape::Stream);
        match shape {
            Shape::Stream => {}
            Shape::TopK { k, collected, .. } => {
                // Solo `finish_top_k`: report sort, truncate to k, drain.
                let mut patterns = collected;
                sort_patterns_for_report(&mut patterns);
                patterns.truncate(k);
                self.gate_drain(patterns);
            }
            Shape::Basis {
                collected,
                truncated,
                finish,
            } => {
                self.truncated |= truncated;
                let patterns = match finish {
                    BasisFinish::Closed => closed_subset(&collected),
                    BasisFinish::Maximal => maximal_subset(&collected),
                    BasisFinish::Ranked { k, filter } => {
                        let mut patterns = match filter {
                            RankedFilter::AsIs => collected,
                            RankedFilter::Closed => closed_subset(&collected),
                            RankedFilter::Maximal => maximal_subset(&collected),
                            RankedFilter::ClosedThenMaximal => {
                                maximal_subset(&closed_subset(&collected))
                            }
                        };
                        patterns.retain(|mp| mp.pattern.len() >= self.min_len);
                        sort_patterns_for_report(&mut patterns);
                        patterns.truncate(k);
                        patterns
                    }
                };
                self.gate_drain(patterns);
            }
        }
        let Some(result) = results.get_mut(self.slot) else {
            return;
        };
        result.outcome.patterns = std::mem::take(&mut self.out);
        result.outcome.stats = self.stats.clone();
        result.outcome.truncated = self.truncated;
        result.emitted = self.emitted;
        result.cancelled = self.cancelled;
    }
}

/// Builds the member table of one scan group and its per-member event
/// eligibility over the shared scan's candidate list.
fn build_members(
    requests: &[MiningRequest],
    deadlines: &[Option<Instant>],
    slots: &[usize],
) -> Vec<Member> {
    let mut members = Vec::with_capacity(slots.len());
    for &slot in slots {
        let Some(request) = requests.get(slot) else {
            continue;
        };
        let deadline = deadlines.get(slot).copied().flatten();
        members.push(Member::new(slot, request, deadline));
    }
    members
}

/// Fills each member's eligibility bitmap: scan event `i` is eligible for a
/// member exactly when its total occurrence count clears the member's own
/// floor — i.e. the member's solo candidate list, as a mask over the shared
/// (lower-threshold) candidate list.
fn fill_eligibility(prepared: PreparedRef<'_>, events: &[EventId], members: &mut [Member]) {
    for member in members.iter_mut() {
        member.eligible = events
            .iter()
            .map(|e| {
                prepared
                    .parts
                    .occurrence_counts
                    .get(e.index())
                    .copied()
                    .unwrap_or(0)
                    >= member.floor
            })
            .collect();
        member.eligible_count = member.eligible.iter().filter(|&&b| b).count() as u64;
    }
}

/// Runs one shared GSgrow scan (plain or constrained) for `slots`.
fn run_all_scan(
    prepared: PreparedRef<'_>,
    requests: &[MiningRequest],
    deadlines: &[Option<Instant>],
    constraints: GapConstraints,
    slots: &[usize],
    results: &mut [MiningResult],
) {
    let mut members = build_members(requests, deadlines, slots);
    let Some(t_min) = members.iter().map(|m| m.floor).min() else {
        return;
    };
    let events = prepared.parts.frequent_events(t_min);
    fill_eligibility(prepared, &events, &mut members);
    let sc = prepared.support_computer();
    let csc = if constraints.is_unbounded() {
        None
    } else {
        Some(ConstrainedSupportComputer::with_support_computer(
            prepared.support_computer(),
            constraints,
        ))
    };
    // The closure checker is only consulted by closed-only top-k members
    // (solo `run_top_k` with `closed_only`); its verdict is independent of
    // which threshold built the candidate list, because candidates are
    // viability-filtered by the visited pattern's support.
    let need_checker = members.iter().any(|m| {
        matches!(
            m.shape,
            Shape::TopK {
                closed_only: true,
                ..
            }
        )
    });
    let checker = if need_checker {
        Some(ClosureChecker::new(&sc, &events))
    } else {
        None
    };

    let mut scan = AllScan {
        sc: &sc,
        csc: csc.as_ref(),
        checker: checker.as_ref(),
        events: &events,
        t_min,
        members: &mut members,
        pool: SetPool::new(),
        scratch: CheckScratch::new(),
        alive: Vec::new(),
    };
    scan.run();

    for member in &mut members {
        member.finish(results);
    }
}

/// The shared GSgrow walk: one DFS over the group's candidate events at
/// `t_min`, with per-member routing. `alive` holds one flags-frame per
/// open DFS level (members-length each); a member is alive at a node iff
/// its solo DFS visits that node.
struct AllScan<'m, 'a, 'b> {
    sc: &'a SupportComputer<'b>,
    csc: Option<&'a ConstrainedSupportComputer<'b>>,
    checker: Option<&'a ClosureChecker<'a, 'b>>,
    events: &'a [EventId],
    t_min: u64,
    members: &'m mut [Member],
    pool: SetPool,
    scratch: CheckScratch,
    alive: Vec<bool>,
}

impl AllScan<'_, '_, '_> {
    fn run(&mut self) {
        let mut stack: Vec<SupportSet> = Vec::new();
        for (i, &seed) in self.events.iter().enumerate() {
            // Skip the seed entirely when no member can use it — solo runs
            // that stopped (or never listed the event) compute nothing
            // here, and top-k members never stop scanning seeds.
            let needed = self.members.iter().any(|m| {
                m.eligible_at(i) && (matches!(m.shape, Shape::TopK { .. }) || !m.detached)
            });
            if !needed {
                continue;
            }
            let initial = self.sc.initial_support_set(seed);
            let sup = initial.support();
            let base = self.alive.len();
            let mut any = false;
            for member in self.members.iter_mut() {
                let flag = if matches!(member.shape, Shape::TopK { .. }) {
                    member.eligible_at(i) && sup >= member.topk_threshold()
                } else {
                    member.eligible_at(i) && !member.detached && sup >= member.floor
                };
                any |= flag;
                self.alive.push(flag);
            }
            if any {
                stack.push(initial);
                self.node(&Pattern::single(seed), &mut stack, base);
                if let Some(done) = stack.pop() {
                    self.pool.give(done);
                }
            } else {
                self.pool.give(initial);
            }
            self.alive.truncate(base);
        }
    }

    /// Visits one shared DFS node whose prefix support sets (including its
    /// own, on top) are held by `stack`; `base` indexes this node's alive
    /// frame.
    fn node(&mut self, pattern: &Pattern, stack: &mut Vec<SupportSet>, base: usize) {
        let len = pattern.len();
        let sup = stack.last().map_or(0, SupportSet::support);

        // 1. Per-member visit: count the node and stream/collect it
        //    (solo: `visited += 1` then emit, before any growth).
        for (j, member) in self.members.iter_mut().enumerate() {
            if !self.alive.get(base + j).copied().unwrap_or(false) {
                continue;
            }
            member.stats.visited += 1;
            match member.shape {
                Shape::Stream => {
                    if let Some(support) = stack.last() {
                        member.gate_emit(pattern, support);
                    }
                }
                Shape::Basis { .. } => {
                    if let Some(support) = stack.last() {
                        member.collect_basis(pattern, support);
                    }
                }
                Shape::TopK { .. } => {}
            }
        }

        // 2. Shared child computation, once for the whole group, kept when
        //    the grown support clears the batch threshold. Index-aligned
        //    with `events` so eligibility masks route per edge.
        let mut need_children = false;
        for (j, member) in self.members.iter().enumerate() {
            if !self.alive.get(base + j).copied().unwrap_or(false) {
                continue;
            }
            let grows = member.allows_growth(len);
            if matches!(member.shape, Shape::TopK { .. }) {
                need_children |= grows;
            } else {
                need_children |= !member.detached && grows;
            }
        }
        let mut children: Vec<Option<SupportSet>> = Vec::new();
        let mut append_equal = false;
        if need_children {
            children.reserve(self.events.len());
            for &event in self.events {
                let mut grown = self.pool.take();
                if let Some(support) = stack.last() {
                    match self.csc {
                        Some(csc) => csc.instance_growth_into(support, event, &mut grown),
                        None => {
                            self.sc
                                .instance_growth_into(support, event, usize::MAX, &mut grown);
                        }
                    }
                }
                append_equal |= grown.support() == sup;
                if grown.support() >= self.t_min {
                    children.push(Some(grown));
                } else {
                    self.pool.give(grown);
                    children.push(None);
                }
            }
        }

        // 3. Top-k processing (solo `TopKState::descend` after its child
        //    pass): growth counters, then qualification against the
        //    member's own dynamic threshold. The closure verdict is
        //    memoized per append-equal flag — a member capped at this depth
        //    computes no children solo, so its flag is forced false.
        let mut verdict_when_growing: Option<bool> = None;
        let mut verdict_when_capped: Option<bool> = None;
        let mut need_growing = false;
        let mut need_capped = false;
        for (j, member) in self.members.iter().enumerate() {
            if !self.alive.get(base + j).copied().unwrap_or(false) {
                continue;
            }
            let Shape::TopK { closed_only, .. } = member.shape else {
                continue;
            };
            if !closed_only || len < member.min_len || sup < member.topk_threshold() {
                continue;
            }
            if member.allows_growth(len) {
                need_growing = true;
            } else {
                need_capped = true;
            }
        }
        if need_growing {
            verdict_when_growing = Some(self.closed_verdict(pattern, stack, append_equal));
        }
        if need_capped {
            verdict_when_capped = Some(self.closed_verdict(pattern, stack, false));
        }
        for (j, member) in self.members.iter_mut().enumerate() {
            if !self.alive.get(base + j).copied().unwrap_or(false) {
                continue;
            }
            let grows = member.allows_growth(len);
            let threshold = member.topk_threshold();
            let eligible_count = member.eligible_count;
            let min_len = member.min_len;
            let keep = member.keep;
            let Shape::TopK {
                k,
                closed_only,
                heap,
                collected,
            } = &mut member.shape
            else {
                continue;
            };
            if grows {
                member.stats.instance_growths += eligible_count;
            }
            if len < min_len || sup < threshold {
                continue;
            }
            let qualifies = if *closed_only {
                let verdict = if grows {
                    verdict_when_growing
                } else {
                    verdict_when_capped
                };
                verdict.unwrap_or(false)
            } else {
                true
            };
            if qualifies {
                heap.push(Reverse(sup));
                if heap.len() > *k {
                    heap.pop();
                }
                let mut mined = MinedPattern::new(pattern.clone(), sup);
                if keep {
                    mined.support_set = stack.last().cloned();
                }
                collected.push(mined);
            }
        }

        // 4. Per-edge descent: growth counters for streaming/basis members
        //    (solo counts one growth per candidate event, stopping when the
        //    member stops), then per-member child aliveness. Top-k members
        //    re-read their dynamic threshold at the moment of descent,
        //    exactly like the solo search.
        if !need_children {
            return;
        }
        for i in 0..self.events.len() {
            let Some(&event) = self.events.get(i) else {
                continue;
            };
            let child = children.get_mut(i).and_then(Option::take);
            let child_sup = child.as_ref().map_or(0, SupportSet::support);
            let frame = self.alive.len();
            let mut any = false;
            for (j, member) in self.members.iter_mut().enumerate() {
                let parent_alive = self.alive.get(base + j).copied().unwrap_or(false);
                let mut child_alive = false;
                if parent_alive {
                    if matches!(member.shape, Shape::TopK { .. }) {
                        child_alive = member.allows_growth(len)
                            && member.eligible_at(i)
                            && child_sup >= member.topk_threshold();
                    } else if !member.detached && member.allows_growth(len) && member.eligible_at(i)
                    {
                        member.stats.instance_growths += 1;
                        child_alive = child_sup >= member.floor;
                    }
                }
                any |= child_alive;
                self.alive.push(child_alive);
            }
            if any {
                if let Some(set) = child {
                    stack.push(set);
                    self.node(&pattern.grow(event), stack, frame);
                    if let Some(done) = stack.pop() {
                        self.pool.give(done);
                    }
                }
            } else if let Some(set) = child {
                self.pool.give(set);
            }
            self.alive.truncate(frame);
        }
    }

    /// One closure check against this node's prefix stack (only reachable
    /// when the group carries a closed-only top-k member, which implies the
    /// checker was built).
    fn closed_verdict(&mut self, pattern: &Pattern, stack: &[SupportSet], flag: bool) -> bool {
        let Some(checker) = self.checker else {
            return false;
        };
        checker.check(pattern, stack, flag, &mut self.scratch) == ClosureStatus::Closed
    }
}

/// Runs one shared CloGSgrow scan for `slots`.
fn run_closed_scan(
    prepared: PreparedRef<'_>,
    requests: &[MiningRequest],
    deadlines: &[Option<Instant>],
    pruning: bool,
    slots: &[usize],
    results: &mut [MiningResult],
) {
    let mut members = build_members(requests, deadlines, slots);
    let Some(t_min) = members.iter().map(|m| m.floor).min() else {
        return;
    };
    let events = prepared.parts.frequent_events(t_min);
    fill_eligibility(prepared, &events, &mut members);
    let sc = prepared.support_computer();
    let checker = ClosureChecker::new(&sc, &events);

    let mut scan = ClosedScan {
        sc: &sc,
        checker: &checker,
        events: &events,
        t_min,
        pruning,
        members: &mut members,
        pool: SetPool::new(),
        scratch: CheckScratch::new(),
        alive: Vec::new(),
    };
    scan.run();

    for member in &mut members {
        member.finish(results);
    }
}

/// The shared CloGSgrow walk. One closure/landmark verdict is computed per
/// node and shared by every alive member: the verdict only depends on the
/// pattern, its prefix supports, and the append-equal flag — all of which
/// are identical across members at a shared node (CloGSgrow computes its
/// append children unconditionally, so no member's flag diverges).
struct ClosedScan<'m, 'a, 'b> {
    sc: &'a SupportComputer<'b>,
    checker: &'a ClosureChecker<'a, 'b>,
    events: &'a [EventId],
    t_min: u64,
    pruning: bool,
    members: &'m mut [Member],
    pool: SetPool,
    scratch: CheckScratch,
    alive: Vec<bool>,
}

impl ClosedScan<'_, '_, '_> {
    fn run(&mut self) {
        let mut stack: Vec<SupportSet> = Vec::new();
        for (i, &seed) in self.events.iter().enumerate() {
            let needed = self.members.iter().any(|m| m.eligible_at(i) && !m.detached);
            if !needed {
                continue;
            }
            let initial = self.sc.initial_support_set(seed);
            let sup = initial.support();
            let base = self.alive.len();
            let mut any = false;
            for member in self.members.iter_mut() {
                let flag = member.eligible_at(i) && !member.detached && sup >= member.floor;
                any |= flag;
                self.alive.push(flag);
            }
            if any {
                stack.push(initial);
                self.node(&Pattern::single(seed), &mut stack, base);
                if let Some(done) = stack.pop() {
                    self.pool.give(done);
                }
            } else {
                self.pool.give(initial);
            }
            self.alive.truncate(base);
        }
    }

    fn node(&mut self, pattern: &Pattern, stack: &mut Vec<SupportSet>, base: usize) {
        let len = pattern.len();
        let sup = stack.last().map_or(0, SupportSet::support);

        // 1. Per-member visit + growth counters. CloGSgrow computes its
        //    append children before any cap check, so every alive member
        //    pays one growth per event of its own candidate list here.
        for (j, member) in self.members.iter_mut().enumerate() {
            if !self.alive.get(base + j).copied().unwrap_or(false) {
                continue;
            }
            member.stats.visited += 1;
            member.stats.instance_growths += member.eligible_count;
        }

        // 2. Shared child computation (always: the verdict needs the
        //    append-equal flag even at depth caps).
        let mut children: Vec<Option<SupportSet>> = Vec::with_capacity(self.events.len());
        let mut append_equal = false;
        for &event in self.events {
            let mut grown = self.pool.take();
            if let Some(support) = stack.last() {
                self.sc
                    .instance_growth_into(support, event, usize::MAX, &mut grown);
            }
            append_equal |= grown.support() == sup;
            if grown.support() >= self.t_min {
                children.push(Some(grown));
            } else {
                self.pool.give(grown);
                children.push(None);
            }
        }

        // 3. One shared verdict for every alive member.
        let verdict = self
            .checker
            .check(pattern, stack, append_equal, &mut self.scratch);
        match verdict {
            ClosureStatus::Prune if self.pruning => {
                // Theorem 5: no pattern with this prefix is closed — the
                // whole subtree is skipped for every member (sound because
                // members not alive here have no alive descendants).
                for (j, member) in self.members.iter_mut().enumerate() {
                    if self.alive.get(base + j).copied().unwrap_or(false) {
                        member.stats.landmark_border_prunes += 1;
                    }
                }
                for set in children.into_iter().flatten() {
                    self.pool.give(set);
                }
                return;
            }
            ClosureStatus::Prune | ClosureStatus::NonClosed => {
                for (j, member) in self.members.iter_mut().enumerate() {
                    if self.alive.get(base + j).copied().unwrap_or(false) {
                        member.stats.non_closed_filtered += 1;
                    }
                }
            }
            ClosureStatus::Closed => {
                for (j, member) in self.members.iter_mut().enumerate() {
                    if !self.alive.get(base + j).copied().unwrap_or(false) {
                        continue;
                    }
                    match member.shape {
                        Shape::Stream => {
                            if let Some(support) = stack.last() {
                                member.gate_emit(pattern, support);
                            }
                        }
                        Shape::Basis { .. } => {
                            if let Some(support) = stack.last() {
                                member.collect_basis(pattern, support);
                            }
                        }
                        Shape::TopK { .. } => {}
                    }
                }
            }
        }

        // 4. Per-edge descent over the kept children.
        for i in 0..self.events.len() {
            let Some(&event) = self.events.get(i) else {
                continue;
            };
            let child = children.get_mut(i).and_then(Option::take);
            let child_sup = child.as_ref().map_or(0, SupportSet::support);
            let frame = self.alive.len();
            let mut any = false;
            for (j, member) in self.members.iter().enumerate() {
                let parent_alive = self.alive.get(base + j).copied().unwrap_or(false);
                let child_alive = parent_alive
                    && !member.detached
                    && member.allows_growth(len)
                    && member.eligible_at(i)
                    && child_sup >= member.floor;
                any |= child_alive;
                self.alive.push(child_alive);
            }
            if any {
                if let Some(set) = child {
                    stack.push(set);
                    self.node(&pattern.grow(event), stack, frame);
                    if let Some(done) = stack.pop() {
                        self.pool.give(done);
                    }
                }
            } else if let Some(set) = child {
                self.pool.give(set);
            }
            self.alive.truncate(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecutionPolicy;
    use crate::prepared::PreparedDb;
    use seqdb::SequenceDatabase;

    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    fn solo(prepared: &PreparedDb, request: &MiningRequest) -> MiningOutcome {
        prepared.miner().with_request(request.clone()).run()
    }

    fn assert_matches_solo(prepared: &PreparedDb, requests: &[MiningRequest]) {
        let batched = prepared.batch(requests);
        assert_eq!(batched.len(), requests.len());
        for (request, result) in requests.iter().zip(&batched) {
            let expected = solo(prepared, request);
            assert_eq!(
                result.outcome.patterns, expected.patterns,
                "patterns diverge for {request:?}"
            );
            assert_eq!(
                result.outcome.truncated, expected.truncated,
                "truncation diverges for {request:?}"
            );
            assert_eq!(
                result.outcome.stats.visited, expected.stats.visited,
                "visited diverges for {request:?}"
            );
            assert_eq!(
                result.outcome.stats.instance_growths, expected.stats.instance_growths,
                "growths diverge for {request:?}"
            );
            assert_eq!(
                result.outcome.stats.non_closed_filtered, expected.stats.non_closed_filtered,
                "closure counters diverge for {request:?}"
            );
            assert_eq!(
                result.outcome.stats.landmark_border_prunes, expected.stats.landmark_border_prunes,
                "pruning counters diverge for {request:?}"
            );
            assert!(!result.cancelled);
        }
    }

    fn request(mode: Mode, min_sup: u64) -> MiningRequest {
        MiningRequest {
            min_sup,
            mode,
            ..MiningRequest::default()
        }
    }

    #[test]
    fn empty_batch_yields_no_results() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        assert!(prepared.batch(&[]).is_empty());
    }

    #[test]
    fn single_request_batches_match_solo_across_modes() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        for mode in [Mode::All, Mode::Closed, Mode::Maximal, Mode::TopK] {
            for min_sup in [1, 2, 3] {
                assert_matches_solo(&prepared, &[request(mode, min_sup)]);
            }
        }
    }

    #[test]
    fn mixed_threshold_group_matches_solo() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        let requests = vec![
            request(Mode::All, 1),
            request(Mode::All, 2),
            request(Mode::All, 4),
            request(Mode::All, 2), // duplicate of an earlier member
        ];
        assert_matches_solo(&prepared, &requests);
    }

    #[test]
    fn cross_mode_batch_matches_solo() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        let mut constrained = request(Mode::Closed, 2);
        constrained.constraints = GapConstraints::max_gap(2);
        let mut ranked = request(Mode::Closed, 1);
        ranked.top_k = Some(4);
        ranked.min_len = 2;
        let requests = vec![
            request(Mode::All, 2),
            request(Mode::Closed, 2),
            request(Mode::Maximal, 2),
            constrained,
            ranked,
        ];
        assert_matches_solo(&prepared, &requests);
    }

    #[test]
    fn impossible_threshold_yields_empty_but_well_formed_result() {
        // Adversarial sink case: one subscriber's min_sup exceeds every
        // pattern's support; it must come back empty (not truncated, not
        // cancelled, zero emissions) while its siblings are unaffected.
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        let requests = vec![request(Mode::All, 2), request(Mode::Closed, 1_000_000)];
        assert_matches_solo(&prepared, &requests);
        let batched = prepared.batch(&requests);
        let Some(impossible) = batched.get(1) else {
            panic!("missing result");
        };
        assert!(impossible.outcome.patterns.is_empty());
        assert!(!impossible.outcome.truncated);
        assert!(!impossible.cancelled);
        assert_eq!(impossible.emitted, 0);
        let Some(sibling) = batched.first() else {
            panic!("missing result");
        };
        assert!(!sibling.outcome.patterns.is_empty());
    }

    #[test]
    fn topk_floor_of_one_subscriber_does_not_prune_siblings() {
        // Shared-floor leakage regression: a tiny-k subscriber raises its
        // own dynamic threshold almost immediately; a low-threshold stream
        // subscriber in the same scan group must still see every pattern.
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        let mut tight_topk = request(Mode::All, 1);
        tight_topk.top_k = Some(1);
        tight_topk.min_len = 2;
        let full_stream = request(Mode::All, 1);
        let requests = vec![tight_topk, full_stream.clone()];
        assert_matches_solo(&prepared, &requests);
        let batched = prepared.batch(&requests);
        let expected = solo(&prepared, &full_stream);
        let Some(stream_result) = batched.get(1) else {
            panic!("missing result");
        };
        assert_eq!(stream_result.outcome.patterns, expected.patterns);
        assert!(
            stream_result.outcome.patterns.len() > 1,
            "stream must not be pruned to k"
        );
    }

    #[test]
    fn two_topk_subscribers_keep_private_thresholds() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        let mut tight = request(Mode::Closed, 1);
        tight.top_k = Some(1);
        tight.min_len = 2;
        let mut wide = request(Mode::Closed, 1);
        wide.top_k = Some(50);
        wide.min_len = 2;
        assert_matches_solo(&prepared, &[tight, wide]);
    }

    #[test]
    fn caps_and_filters_stay_per_member() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        let mut capped = request(Mode::All, 1);
        capped.max_patterns = Some(3);
        let mut short = request(Mode::All, 1);
        short.max_pattern_length = Some(2);
        let mut long_only = request(Mode::All, 1);
        long_only.min_len = 3;
        assert_matches_solo(
            &prepared,
            &[capped, short, long_only, request(Mode::All, 1)],
        );
    }

    #[test]
    fn ranked_k_zero_is_trivially_empty() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        let mut zero = request(Mode::Closed, 1);
        zero.top_k = Some(0);
        assert_matches_solo(&prepared, &[zero, request(Mode::Closed, 2)]);
    }

    #[test]
    fn expired_deadline_cancels_only_its_own_member() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        let requests = vec![request(Mode::All, 1), request(Mode::All, 1)];
        let deadlines = vec![
            Some(Instant::now() - std::time::Duration::from_secs(1)),
            None,
        ];
        let batched = prepared.batch_with_deadlines(&requests, &deadlines);
        let Some(expired) = batched.first() else {
            panic!("missing result");
        };
        assert!(expired.cancelled);
        assert!(expired.outcome.patterns.is_empty());
        let Some(healthy) = batched.get(1) else {
            panic!("missing result");
        };
        assert!(!healthy.cancelled);
        let expected = solo(&prepared, &request(Mode::All, 1));
        assert_eq!(healthy.outcome.patterns, expected.patterns);
    }

    #[test]
    fn execution_policy_is_ignored_and_matches_sequential_solo() {
        // Batch always replays sequential semantics, whatever the request
        // says; pin that the counters match the sequential run.
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        let mut parallel = request(Mode::Closed, 2);
        parallel.execution = ExecutionPolicy::Parallel { threads: 4 };
        let batched = prepared.batch(std::slice::from_ref(&parallel));
        let mut sequential = parallel.clone();
        sequential.execution = ExecutionPolicy::Sequential;
        let expected = solo(&prepared, &sequential);
        let Some(result) = batched.first() else {
            panic!("missing result");
        };
        assert_eq!(result.outcome.patterns, expected.patterns);
        assert_eq!(result.outcome.stats.visited, expected.stats.visited);
    }
}
