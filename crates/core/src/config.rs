//! Mining configuration shared by GSgrow and CloGSgrow.

/// Configuration of a mining run.
///
/// Only `min_sup` is required by the paper; the remaining knobs are
/// practical safety limits (the paper itself manually aborts GSgrow runs
/// that exceed several hours — the "cut-off" points of Figures 2–6) and
/// reporting options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiningConfig {
    /// The support threshold `min_sup`: only patterns with repetitive
    /// support `>= min_sup` are reported.
    pub min_sup: u64,
    /// Optional cap on pattern length. `None` means unbounded (the paper's
    /// setting). Useful to bound exploratory runs on pathological data.
    pub max_pattern_length: Option<usize>,
    /// Optional cap on the number of *emitted* patterns. When the cap is
    /// reached the search stops and the result is marked as truncated. This
    /// reproduces the "GSgrow takes too long / finds too many patterns"
    /// cut-off behaviour of the evaluation without multi-hour runs.
    pub max_patterns: Option<usize>,
    /// When `true`, the leftmost support set (compressed instances) of every
    /// reported pattern is stored in the result.
    pub keep_support_sets: bool,
    /// When `false`, CloGSgrow skips the landmark border pruning of
    /// Theorem 5 and relies on closure checking alone (ablation switch; the
    /// mined pattern set is identical, only the amount of search differs).
    pub use_landmark_pruning: bool,
}

impl MiningConfig {
    /// Creates a configuration with the given support threshold and default
    /// settings for everything else (no limits, no support sets kept).
    pub fn new(min_sup: u64) -> Self {
        Self {
            min_sup,
            max_pattern_length: None,
            max_patterns: None,
            keep_support_sets: false,
            use_landmark_pruning: true,
        }
    }

    /// Sets the maximum pattern length.
    pub fn with_max_pattern_length(mut self, max_len: usize) -> Self {
        self.max_pattern_length = Some(max_len);
        self
    }

    /// Sets the maximum number of emitted patterns.
    pub fn with_max_patterns(mut self, max_patterns: usize) -> Self {
        self.max_patterns = Some(max_patterns);
        self
    }

    /// Requests that support sets be kept on every mined pattern.
    pub fn with_support_sets(mut self) -> Self {
        self.keep_support_sets = true;
        self
    }

    /// Disables the landmark border pruning of Theorem 5 (ablation switch
    /// for CloGSgrow; has no effect on GSgrow).
    pub fn without_landmark_pruning(mut self) -> Self {
        self.use_landmark_pruning = false;
        self
    }

    /// The effective minimum support, never below 1 (a support threshold of
    /// 0 would make the empty-pattern semantics degenerate).
    pub fn effective_min_sup(&self) -> u64 {
        self.min_sup.max(1)
    }

    /// Returns `true` if a pattern of length `len` may still be grown.
    pub(crate) fn allows_growth(&self, len: usize) -> bool {
        self.max_pattern_length.is_none_or(|max| len < max)
    }
}

impl Default for MiningConfig {
    fn default() -> Self {
        Self::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_setters_compose() {
        let config = MiningConfig::new(5)
            .with_max_pattern_length(10)
            .with_max_patterns(1000)
            .with_support_sets();
        assert_eq!(config.min_sup, 5);
        assert_eq!(config.max_pattern_length, Some(10));
        assert_eq!(config.max_patterns, Some(1000));
        assert!(config.keep_support_sets);
    }

    #[test]
    fn effective_min_sup_is_at_least_one() {
        assert_eq!(MiningConfig::new(0).effective_min_sup(), 1);
        assert_eq!(MiningConfig::new(3).effective_min_sup(), 3);
    }

    #[test]
    fn allows_growth_respects_max_length() {
        let unbounded = MiningConfig::new(1);
        assert!(unbounded.allows_growth(1_000));
        let bounded = MiningConfig::new(1).with_max_pattern_length(3);
        assert!(bounded.allows_growth(2));
        assert!(!bounded.allows_growth(3));
    }

    #[test]
    fn default_threshold_is_two() {
        assert_eq!(MiningConfig::default().min_sup, 2);
    }
}
