//! # rgs-bench — experiment harness for the ICDE'09 evaluation
//!
//! This crate regenerates every figure of the paper's performance study
//! (Figures 2–6), the Table I semantics comparison, the baseline runtime
//! comparison, and the §IV-B case study, on the synthetic stand-ins provided
//! by the `synthgen` crate.
//!
//! The harness is organized as:
//!
//! * [`datasets`] — the per-experiment dataset presets (paper-sized and
//!   scaled-down),
//! * [`runner`] — a uniform way to run each miner and record runtime and
//!   pattern counts,
//! * [`report`] — small table/markdown/JSON reporting utilities,
//! * [`experiments`] — one function per experiment, returning a
//!   [`report::ExperimentReport`],
//! * [`prepared_bench`] — the engine-level benchmarks behind the
//!   `BENCH_*.json` entries at the repository root: parallel and
//!   prepared-reuse speedups (`BENCH_prepared_engine.json`), columnar
//!   storage measurements (`BENCH_columnar_store.json`), and the snapshot
//!   cold-start comparison — build-from-text vs zero-copy open
//!   (`BENCH_snapshot.json`) — all runnable via
//!   `cargo run --release -p rgs-bench --bin prepared_bench`.
//!
//! Absolute runtimes are hardware-dependent; what the harness is expected to
//! reproduce is the *shape* of every figure: the closed miner reports far
//! fewer patterns and stays tractable at thresholds where mining all
//! patterns blows up, runtimes grow with the number of sequences and with
//! the average sequence length, and the case study recovers the long
//! end-to-end behaviour plus the lock→unlock micro-pattern.
//!
//! # Example — render a cold-start report entry
//!
//! Dataset generation and mining are too heavy for a doctest (the real
//! runs live behind the `prepared_bench` binary); the report types are
//! plain data and render hand-rolled JSON:
//!
//! ```
//! use rgs_bench::prepared_bench::{SnapshotReport, SnapshotWorkload};
//!
//! let report = SnapshotReport {
//!     scale: "dev".into(),
//!     workloads: vec![SnapshotWorkload {
//!         dataset: "QUEST C10T8S8I8: 2000 sequences".into(),
//!         min_sup: 20,
//!         build_from_text_seconds: 0.031,
//!         write_seconds: 0.002,
//!         open_snapshot_seconds: 0.0004,
//!         cold_start_speedup: 77.5,
//!         snapshot_bytes: 250_432,
//!         heap_bytes: 248_120,
//!         mmap: true,
//!         roundtrip_identical: true,
//!     }],
//! };
//! let json = report.to_json();
//! assert!(json.contains("\"benchmark\": \"snapshot_cold_start\""));
//! assert_eq!(json.matches('{').count(), json.matches('}').count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod experiments;
pub mod prepared_bench;
pub mod report;
pub mod runner;

pub use report::{ExperimentReport, ReportRow};
pub use runner::{run_miner, run_miner_on, MinerKind, RunRecord};
