//! # rgs-bench — experiment harness for the ICDE'09 evaluation
//!
//! This crate regenerates every figure of the paper's performance study
//! (Figures 2–6), the Table I semantics comparison, the baseline runtime
//! comparison, and the §IV-B case study, on the synthetic stand-ins provided
//! by the `synthgen` crate.
//!
//! The harness is organized as:
//!
//! * [`datasets`] — the per-experiment dataset presets (paper-sized and
//!   scaled-down),
//! * [`runner`] — a uniform way to run each miner and record runtime and
//!   pattern counts,
//! * [`report`] — small table/markdown/JSON reporting utilities,
//! * [`experiments`] — one function per experiment, returning a
//!   [`report::ExperimentReport`].
//!
//! Absolute runtimes are hardware-dependent; what the harness is expected to
//! reproduce is the *shape* of every figure: the closed miner reports far
//! fewer patterns and stays tractable at thresholds where mining all
//! patterns blows up, runtimes grow with the number of sequences and with
//! the average sequence length, and the case study recovers the long
//! end-to-end behaviour plus the lock→unlock micro-pattern.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod experiments;
pub mod prepared_bench;
pub mod report;
pub mod runner;

pub use report::{ExperimentReport, ReportRow};
pub use runner::{run_miner, run_miner_on, MinerKind, RunRecord};
