//! Benchmark for the prepared-query engine: measures the parallel-mining
//! speedup and the prepared-reuse speedup on the features pipeline, and
//! renders the result as the `BENCH_prepared_engine.json` entry checked in
//! at the repository root.
//!
//! Since the columnar-storage refactor the module also measures the storage
//! layer itself ([`run_columnar`]): CSR index build time, store/index byte
//! footprints, bytes per compressed instance, and instance-growth
//! throughput on the Fig. 2/5/6 workloads — written to
//! `BENCH_columnar_store.json` so regressions against the PR 2 baseline
//! (`BENCH_prepared_engine.json`) stay visible.
//!
//! The snapshot subsystem gets its own cold-start benchmark
//! ([`run_snapshot`], written to `BENCH_snapshot.json`): on each Fig. 2/5/6
//! workload it compares *build-from-text* (parse the token file, intern,
//! build the CSR index, compute the counts) against *open-snapshot* (map
//! one image file and validate its checksum), records bytes on disk next
//! to `PreparedDb::heap_bytes`, and asserts that mining the reopened
//! snapshot is bit-identical to mining the original.

use std::time::Instant;

use rgs_core::json::escape;
use rgs_core::{CountSink, Instance, MiningRequest, Mode, PreparedDb, SupportComputer};
use rgs_features::pipeline::{run_pipeline, sweep_min_sup, PipelineConfig};
use rgs_features::LabeledDatabase;
use seqdb::EventId;
use synthgen::labeled::LabeledTraceConfig;

use crate::datasets;
use crate::datasets::Scale;

/// The measured numbers of one prepared-engine benchmark run.
#[derive(Debug, Clone)]
pub struct PreparedEngineReport {
    /// Mining dataset description.
    pub dataset: String,
    /// Support threshold of the mining measurement.
    pub min_sup: u64,
    /// Worker threads of the parallel measurement.
    pub threads: usize,
    /// CPUs actually available to this process — the hard ceiling on any
    /// parallel speedup (a 1-CPU container cannot speed up, only stay
    /// bit-identical).
    pub available_parallelism: usize,
    /// Best-of-N sequential closed-mining wall time (prepared snapshot).
    pub sequential_seconds: f64,
    /// Best-of-N parallel closed-mining wall time (same snapshot).
    pub parallel_seconds: f64,
    /// `sequential_seconds / parallel_seconds`.
    pub parallel_speedup: f64,
    /// Whether the parallel pattern list was bit-identical to sequential.
    pub parallel_output_identical: bool,
    /// Pipeline dataset description.
    pub pipeline_dataset: String,
    /// The support thresholds of the pipeline sweep.
    pub sweep_min_sups: Vec<u64>,
    /// Wall time of the sweep re-preparing per call ([`run_pipeline`]).
    pub pipeline_fresh_seconds: f64,
    /// Wall time of the sweep hoisting one snapshot ([`sweep_min_sup`]).
    pub pipeline_prepared_seconds: f64,
    /// `pipeline_fresh_seconds / pipeline_prepared_seconds`.
    pub prepared_reuse_speedup: f64,
}

impl PreparedEngineReport {
    /// Renders the report as a JSON object (hand-rolled, no serde).
    pub fn to_json(&self) -> String {
        let sweep: Vec<String> = self.sweep_min_sups.iter().map(u64::to_string).collect();
        format!(
            "{{\n  \"benchmark\": \"prepared_engine\",\n  \"dataset\": {},\n  \"min_sup\": {},\n  \
             \"threads\": {},\n  \"available_parallelism\": {},\n  \
             \"sequential_seconds\": {:.6},\n  \"parallel_seconds\": {:.6},\n  \
             \"parallel_speedup\": {:.3},\n  \"parallel_output_identical\": {},\n  \
             \"pipeline_dataset\": {},\n  \"sweep_min_sups\": [{}],\n  \
             \"pipeline_fresh_seconds\": {:.6},\n  \"pipeline_prepared_seconds\": {:.6},\n  \
             \"prepared_reuse_speedup\": {:.3}\n}}\n",
            escape(&self.dataset),
            self.min_sup,
            self.threads,
            self.available_parallelism,
            self.sequential_seconds,
            self.parallel_seconds,
            self.parallel_speedup,
            self.parallel_output_identical,
            escape(&self.pipeline_dataset),
            sweep.join(", "),
            self.pipeline_fresh_seconds,
            self.pipeline_prepared_seconds,
            self.prepared_reuse_speedup,
        )
    }
}

/// Best-of-`repeats` wall time of `f`.
fn best_of<R>(repeats: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let start = Instant::now();
    let mut result = f();
    best = best.min(start.elapsed().as_secs_f64());
    for _ in 1..repeats.max(1) {
        let start = Instant::now();
        result = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, result)
}

/// Runs the benchmark: parallel closed mining vs sequential on a prepared
/// snapshot, and the features-pipeline threshold sweep with and without
/// prepared reuse.
pub fn run(scale: Scale, threads: usize, repeats: usize) -> PreparedEngineReport {
    // -- Parallel speedup: closed mining on the Figure 2 QUEST dataset at
    // the lowest threshold of its sweep (the heaviest setting that still
    // terminates comfortably at dev scale).
    let (name, db) = datasets::fig2_dataset(scale);
    let thresholds = datasets::fig2_thresholds(scale);
    let min_sup = thresholds[thresholds.len() - 1];
    let prepared = PreparedDb::new(&db);
    let (sequential_seconds, sequential) = best_of(repeats, || {
        prepared.miner().min_sup(min_sup).mode(Mode::Closed).run()
    });
    let (parallel_seconds, parallel) = best_of(repeats, || {
        prepared
            .miner()
            .min_sup(min_sup)
            .mode(Mode::Closed)
            .threads(threads)
            .run()
    });
    let parallel_output_identical = sequential.patterns == parallel.patterns;

    // -- Prepared-reuse speedup: the model-selection threshold sweep of the
    // features pipeline, re-preparing per call vs hoisting one snapshot.
    // The sweep walks down from a very high threshold (the usual "find the
    // highest threshold that still yields features" search), so individual
    // queries are cheap and the per-call preparation is the waste.
    let (pipeline_db, labels) = LabeledTraceConfig::default()
        .with_traces_per_class(if scale == Scale::Paper { 1_200 } else { 400 })
        .generate();
    let data = LabeledDatabase::new(pipeline_db, labels).expect("aligned labels");
    let base = PipelineConfig::new(40, 6).with_max_pattern_length(3);
    let top_occurrences = {
        let prepared = PreparedDb::new(data.database());
        data.database()
            .catalog()
            .ids()
            .map(|e| prepared.occurrence_count(e))
            .max()
            .unwrap_or(1)
    };
    let sweep_min_sups: Vec<u64> = (1..=8).map(|i| top_occurrences * (8 + i) / 16).collect();
    let (pipeline_fresh_seconds, _) = best_of(repeats, || {
        for &min_sup in &sweep_min_sups {
            let config = PipelineConfig {
                min_sup,
                ..base.clone()
            };
            run_pipeline(&data, &config).expect("pipeline runs");
        }
    });
    let (pipeline_prepared_seconds, _) = best_of(repeats, || {
        sweep_min_sup(&data, &sweep_min_sups, &base).expect("sweep runs");
    });

    PreparedEngineReport {
        dataset: format!("{name}: {}", db.stats().summary()),
        min_sup,
        threads,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        sequential_seconds,
        parallel_seconds,
        parallel_speedup: sequential_seconds / parallel_seconds.max(1e-12),
        parallel_output_identical,
        pipeline_dataset: data.summary(),
        sweep_min_sups,
        pipeline_fresh_seconds,
        pipeline_prepared_seconds,
        prepared_reuse_speedup: pipeline_fresh_seconds / pipeline_prepared_seconds.max(1e-12),
    }
}

/// Storage-layer measurements of one Fig. 2/5/6 workload.
#[derive(Debug, Clone)]
pub struct ColumnarWorkload {
    /// Dataset description (name + stats summary).
    pub dataset: String,
    /// Support threshold of the growth-throughput measurement.
    pub min_sup: u64,
    /// Pattern budget of the growth-throughput run: GSgrow's complete
    /// output explodes combinatorially at these thresholds, so the run
    /// streams into a counting sink and stops after this many patterns —
    /// memory- and time-bounded, while the growths/second rate stays
    /// representative.
    pub pattern_cap: usize,
    /// Best-of-N wall time of one CSR inverted-index build.
    pub index_build_seconds: f64,
    /// Live bytes of the flat event store (arena + CSR offsets).
    pub store_bytes: usize,
    /// Live bytes of the CSR inverted index (positions arena + offsets).
    pub index_bytes: usize,
    /// `(store_bytes + index_bytes) / total_length`.
    pub bytes_per_event: f64,
    /// Size of one compressed `(seq, first, last)` instance triple.
    pub bytes_per_instance: usize,
    /// Instance growths performed by one full GSgrow run at `min_sup`.
    pub instance_growths: u64,
    /// Best-of-N wall time of that run (on a prepared snapshot, so the
    /// index build is *not* included).
    pub growth_seconds: f64,
    /// `instance_growths / growth_seconds`.
    pub growths_per_second: f64,
}

impl ColumnarWorkload {
    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\": {}, \"min_sup\": {}, \"pattern_cap\": {}, \
             \"index_build_seconds\": {:.6}, \
             \"store_bytes\": {}, \"index_bytes\": {}, \"bytes_per_event\": {:.3}, \
             \"bytes_per_instance\": {}, \"instance_growths\": {}, \
             \"growth_seconds\": {:.6}, \"growths_per_second\": {:.0}}}",
            escape(&self.dataset),
            self.min_sup,
            self.pattern_cap,
            self.index_build_seconds,
            self.store_bytes,
            self.index_bytes,
            self.bytes_per_event,
            self.bytes_per_instance,
            self.instance_growths,
            self.growth_seconds,
            self.growths_per_second,
        )
    }
}

/// The columnar-store benchmark report (`BENCH_columnar_store.json`).
#[derive(Debug, Clone)]
pub struct ColumnarStoreReport {
    /// Benchmark scale (dev/paper).
    pub scale: String,
    /// The PR 2 baseline file this report is compared against: its
    /// `sequential_seconds` is closed mining on the same Fig. 2 workload.
    pub baseline: String,
    /// Best-of-N closed-mining wall time on the Fig. 2 workload (directly
    /// comparable with the baseline's `sequential_seconds`).
    pub fig2_closed_seconds: f64,
    /// Per-workload storage measurements (Fig. 2, 5, 6).
    pub workloads: Vec<ColumnarWorkload>,
}

impl ColumnarStoreReport {
    /// Renders the report as a JSON object (hand-rolled, no serde).
    pub fn to_json(&self) -> String {
        let workloads: Vec<String> = self
            .workloads
            .iter()
            .map(|w| format!("    {}", w.to_json()))
            .collect();
        format!(
            "{{\n  \"benchmark\": \"columnar_store\",\n  \"scale\": {},\n  \
             \"baseline\": {},\n  \"fig2_closed_seconds\": {:.6},\n  \
             \"workloads\": [\n{}\n  ]\n}}\n",
            escape(&self.scale),
            escape(&self.baseline),
            self.fig2_closed_seconds,
            workloads.join(",\n"),
        )
    }
}

/// Pattern budget of the growth-throughput measurement (see
/// [`ColumnarWorkload::pattern_cap`]).
const GROWTH_PATTERN_CAP: usize = 50_000;

/// Measures one workload: index build time, byte footprints, and the
/// instance-growth throughput of a (pattern-capped) GSgrow run streamed
/// into a counting sink on a prepared snapshot — nothing is materialized.
fn columnar_workload(
    name: &str,
    db: &seqdb::SequenceDatabase,
    min_sup: u64,
    repeats: usize,
) -> ColumnarWorkload {
    let (index_build_seconds, index) = best_of(repeats, || db.inverted_index());
    let store_bytes = db.store().heap_bytes();
    let index_bytes = index.heap_bytes();
    let prepared = PreparedDb::new(db);
    let (growth_seconds, report) = best_of(repeats, || {
        let mut sink = CountSink::new();
        prepared
            .miner()
            .min_sup(min_sup)
            .mode(Mode::All)
            .max_patterns(GROWTH_PATTERN_CAP)
            .run_with_sink(&mut sink)
    });
    let instance_growths = report.stats.instance_growths;
    ColumnarWorkload {
        dataset: format!("{name}: {}", db.stats().summary()),
        min_sup,
        pattern_cap: GROWTH_PATTERN_CAP,
        index_build_seconds,
        store_bytes,
        index_bytes,
        bytes_per_event: (store_bytes + index_bytes) as f64 / db.total_length().max(1) as f64,
        bytes_per_instance: std::mem::size_of::<Instance>(),
        instance_growths,
        growth_seconds,
        growths_per_second: instance_growths as f64 / growth_seconds.max(1e-12),
    }
}

/// Runs the columnar-store benchmark on the Fig. 2/5/6 workloads.
pub fn run_columnar(scale: Scale, repeats: usize) -> ColumnarStoreReport {
    let mut workloads = Vec::new();

    let (fig2_name, fig2_db) = datasets::fig2_dataset(scale);
    let fig2_thresholds = datasets::fig2_thresholds(scale);
    let fig2_min_sup = fig2_thresholds[fig2_thresholds.len() - 1];
    workloads.push(columnar_workload(
        &fig2_name,
        &fig2_db,
        fig2_min_sup,
        repeats,
    ));

    let fig56_min_sup = datasets::fig5_fig6_threshold(scale);
    let (fig5_name, fig5_db) = datasets::fig5_largest(scale);
    workloads.push(columnar_workload(
        &fig5_name,
        &fig5_db,
        fig56_min_sup,
        repeats,
    ));
    let (fig6_name, fig6_db) = datasets::fig6_largest(scale);
    workloads.push(columnar_workload(
        &fig6_name,
        &fig6_db,
        fig56_min_sup,
        repeats,
    ));

    // Closed mining on Fig. 2 — the number directly comparable with the
    // PR 2 baseline's `sequential_seconds` in BENCH_prepared_engine.json.
    let prepared = PreparedDb::new(&fig2_db);
    let (fig2_closed_seconds, _) = best_of(repeats, || {
        prepared
            .miner()
            .min_sup(fig2_min_sup)
            .mode(Mode::Closed)
            .run()
    });

    ColumnarStoreReport {
        scale: format!("{scale:?}").to_lowercase(),
        baseline: "BENCH_prepared_engine.json (PR 2)".to_owned(),
        fig2_closed_seconds,
        workloads,
    }
}

/// Cold-start measurements of one Fig. 2/5/6 workload.
#[derive(Debug, Clone)]
pub struct SnapshotWorkload {
    /// Dataset description (name + stats summary).
    pub dataset: String,
    /// Support threshold of the round-trip mining check.
    pub min_sup: u64,
    /// Best-of-N wall time of a cold build from text: parse the token
    /// file, intern every label, flatten into the store, build the CSR
    /// index, and compute the per-event counts (what a service restart
    /// costs *without* snapshots).
    pub build_from_text_seconds: f64,
    /// Best-of-N wall time of one `PreparedDb::write_snapshot`.
    pub write_seconds: f64,
    /// Best-of-N wall time of one `PreparedDb::open_snapshot`: map the
    /// image, verify the checksum, reconstruct every arena zero-copy.
    pub open_snapshot_seconds: f64,
    /// `build_from_text_seconds / open_snapshot_seconds` — the cold-start
    /// win of shipping an image instead of text.
    pub cold_start_speedup: f64,
    /// Size of the image file on disk.
    pub snapshot_bytes: u64,
    /// `PreparedDb::heap_bytes` of the snapshotted arenas — the disk image
    /// is this plus header, section table, catalog, counts, and padding.
    pub heap_bytes: usize,
    /// Whether the open used `mmap` (zero-copy) or the buffered fallback.
    pub mmap: bool,
    /// Whether closed mining on the reopened snapshot was bit-identical to
    /// mining the in-memory preparation.
    pub roundtrip_identical: bool,
}

impl SnapshotWorkload {
    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\": {}, \"min_sup\": {}, \
             \"build_from_text_seconds\": {:.6}, \"write_seconds\": {:.6}, \
             \"open_snapshot_seconds\": {:.6}, \"cold_start_speedup\": {:.2}, \
             \"snapshot_bytes\": {}, \"heap_bytes\": {}, \"mmap\": {}, \
             \"roundtrip_identical\": {}}}",
            escape(&self.dataset),
            self.min_sup,
            self.build_from_text_seconds,
            self.write_seconds,
            self.open_snapshot_seconds,
            self.cold_start_speedup,
            self.snapshot_bytes,
            self.heap_bytes,
            self.mmap,
            self.roundtrip_identical,
        )
    }
}

/// The snapshot cold-start benchmark report (`BENCH_snapshot.json`).
#[derive(Debug, Clone)]
pub struct SnapshotReport {
    /// Benchmark scale (dev/paper).
    pub scale: String,
    /// Per-workload cold-start measurements (Fig. 2, 5, 6).
    pub workloads: Vec<SnapshotWorkload>,
}

impl SnapshotReport {
    /// Renders the report as a JSON object (hand-rolled, no serde).
    pub fn to_json(&self) -> String {
        let workloads: Vec<String> = self
            .workloads
            .iter()
            .map(|w| format!("    {}", w.to_json()))
            .collect();
        format!(
            "{{\n  \"benchmark\": \"snapshot_cold_start\",\n  \"scale\": {},\n  \
             \"workloads\": [\n{}\n  ]\n}}\n",
            escape(&self.scale),
            workloads.join(",\n"),
        )
    }
}

/// Measures one workload's cold-start paths. Both temp files (the token
/// text and the image) are removed before returning.
fn snapshot_workload(
    name: &str,
    db: &seqdb::SequenceDatabase,
    min_sup: u64,
    repeats: usize,
) -> SnapshotWorkload {
    let dir = std::env::temp_dir();
    let tag = format!("rgs-snapbench-{}-{name}", std::process::id()).replace([' ', '/'], "-");
    let text_path = dir.join(format!("{tag}.tokens"));
    let image_path = dir.join(format!("{tag}.snap"));

    seqdb::io::write_tokens_file(db, &text_path).expect("write token file");
    let (build_from_text_seconds, prepared) = best_of(repeats, || {
        let db = seqdb::io::read_tokens_file(&text_path).expect("read token file");
        PreparedDb::from_database(db)
    });

    let (write_seconds, snapshot_bytes) = best_of(repeats, || {
        prepared
            .write_snapshot(&image_path)
            .expect("write snapshot")
    });
    let (open_snapshot_seconds, reopened) = best_of(repeats, || {
        PreparedDb::open_snapshot(&image_path).expect("open snapshot")
    });
    let mmap = seqdb::SnapshotImage::open(&image_path)
        .map(|image| image.is_mapped())
        .unwrap_or(false);

    // Closed mining explodes combinatorially at the Fig. 5/6 thresholds
    // (the columnar benchmark caps its growth runs for the same reason), so
    // the bit-identity check applies a uniform cap to both sides — the
    // compared prefixes are still exact.
    let fresh = prepared
        .miner()
        .min_sup(min_sup)
        .mode(Mode::Closed)
        .max_patterns(GROWTH_PATTERN_CAP)
        .run();
    let cold = reopened
        .miner()
        .min_sup(min_sup)
        .mode(Mode::Closed)
        .max_patterns(GROWTH_PATTERN_CAP)
        .run();
    let roundtrip_identical = fresh.patterns == cold.patterns;

    std::fs::remove_file(&text_path).ok();
    std::fs::remove_file(&image_path).ok();

    SnapshotWorkload {
        dataset: format!("{name}: {}", db.stats().summary()),
        min_sup,
        build_from_text_seconds,
        write_seconds,
        open_snapshot_seconds,
        cold_start_speedup: build_from_text_seconds / open_snapshot_seconds.max(1e-12),
        snapshot_bytes,
        heap_bytes: prepared.heap_bytes(),
        mmap,
        roundtrip_identical,
    }
}

/// Growth-kernel measurements of one workload: batched-cursor instance
/// growth throughput plus the narrow-column storage footprint.
#[derive(Debug, Clone)]
pub struct GrowthKernelWorkload {
    /// Dataset description (name + stats summary).
    pub dataset: String,
    /// Support threshold filtering which single-event seed sets the
    /// measured extension layers grow.
    pub min_sup: u64,
    /// Physical bytes of one event-arena element (2 narrow, 4 wide).
    pub event_elem_bytes: usize,
    /// Live bytes of the event store at its actual width.
    pub store_bytes: usize,
    /// What the same store would occupy at 4 bytes per event —
    /// `store_bytes_wide - store_bytes` is the narrow-column saving.
    pub store_bytes_wide: usize,
    /// Instances emitted by one measured run (`GROWTH_LAYER_ITERS` full
    /// extension layers over the seed sets, kernel work only).
    pub instance_growths: u64,
    /// Best-of-N wall time of that run on the active (vectorized when the
    /// CPU allows) kernel backend.
    pub growth_seconds: f64,
    /// `instance_growths / growth_seconds` on the active backend.
    pub growths_per_second: f64,
    /// Best-of-N wall time of the same run pinned to the scalar kernels
    /// (via `seqdb::simd::force_backend`) — same machine, same process.
    pub scalar_growth_seconds: f64,
    /// `instance_growths / scalar_growth_seconds` (the growth counter is
    /// bit-identical across backends, asserted at measurement time).
    pub scalar_growths_per_second: f64,
    /// `growths_per_second / scalar_growths_per_second`: the same-machine
    /// win of the vectorized path (1.0 when the active backend *is*
    /// scalar, e.g. under `RGS_FORCE_SCALAR`).
    pub vector_speedup: f64,
}

impl GrowthKernelWorkload {
    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\": {}, \"min_sup\": {}, \
             \"event_elem_bytes\": {}, \"store_bytes\": {}, \"store_bytes_wide\": {}, \
             \"instance_growths\": {}, \"growth_seconds\": {:.6}, \
             \"growths_per_second\": {:.0}, \"scalar_growth_seconds\": {:.6}, \
             \"scalar_growths_per_second\": {:.0}, \"vector_speedup\": {:.3}}}",
            escape(&self.dataset),
            self.min_sup,
            self.event_elem_bytes,
            self.store_bytes,
            self.store_bytes_wide,
            self.instance_growths,
            self.growth_seconds,
            self.growths_per_second,
            self.scalar_growth_seconds,
            self.scalar_growths_per_second,
            self.vector_speedup,
        )
    }
}

/// The growth-kernel benchmark report (`BENCH_growth_kernel.json`).
#[derive(Debug, Clone)]
pub struct GrowthKernelReport {
    /// Benchmark scale (dev/paper).
    pub scale: String,
    /// The kernel backend the vectorized numbers ran on
    /// (`avx2`/`sse2`/`swar`/`scalar` — see `seqdb::simd`).
    pub backend: String,
    /// The dispatch-relevant CPU features this machine detected (for
    /// example `"sse2 avx2"`), so cross-container numbers carry their
    /// hardware context instead of a prose caveat.
    pub cpu_features: String,
    /// Provenance note for the scalar comparison column.
    pub baseline: String,
    /// Per-workload measurements: the Fig. 6 avg-~103 workload plus the
    /// avg-~200 / avg-~400 long-sequence datasets and the dense
    /// small-alphabet long-sequence workload where posting rows are long
    /// enough for the lane-parallel kernels to pay off.
    pub workloads: Vec<GrowthKernelWorkload>,
}

impl GrowthKernelReport {
    /// Renders the report as a JSON object (hand-rolled, no serde).
    pub fn to_json(&self) -> String {
        let workloads: Vec<String> = self
            .workloads
            .iter()
            .map(|w| format!("    {}", w.to_json()))
            .collect();
        format!(
            "{{\n  \"benchmark\": \"growth_kernel\",\n  \"scale\": {},\n  \
             \"backend\": {},\n  \"cpu_features\": {},\n  \
             \"baseline\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
            escape(&self.scale),
            escape(&self.backend),
            escape(&self.cpu_features),
            escape(&self.baseline),
            workloads.join(",\n"),
        )
    }
}

/// How many full extension layers one measured run performs: a single
/// layer over the seed sets takes a few milliseconds at dev scale, so the
/// measurement loops it to keep the timed window comfortably above timer
/// and scheduler noise.
const GROWTH_LAYER_ITERS: usize = 8;

/// Measures one growth-kernel workload: narrow-column byte footprints from
/// the dataset statistics plus the kernel-only throughput of repeated full
/// extension layers ([`rgs_core::kernel::grow_layer`]) — every frequent
/// single-event seed support set grown by every frequent event, the exact
/// grow calls the first `mineFre` level issues. Timing the kernel entry
/// point directly (instead of a whole mining run) keeps support counting,
/// closure checks, and tree bookkeeping out of the measured window, so the
/// scalar-vs-vector ratio measures the kernels and nothing else.
fn growth_kernel_workload(
    name: &str,
    db: &seqdb::SequenceDatabase,
    min_sup: u64,
    repeats: usize,
) -> GrowthKernelWorkload {
    let stats = db.stats();
    let sc = SupportComputer::new(db);
    let seeds: Vec<(EventId, rgs_core::SupportSet)> = (0..db.num_events())
        .filter_map(|e| u32::try_from(e).ok().map(EventId))
        .map(|e| (e, sc.initial_support_set(e)))
        .filter(|(_, set)| set.support() >= min_sup)
        .collect();
    let events: Vec<EventId> = seeds.iter().map(|(e, _)| *e).collect();
    let seed_sets: Vec<rgs_core::SupportSet> = seeds.into_iter().map(|(_, set)| set).collect();
    let run = || {
        let mut emitted = 0u64;
        for _ in 0..GROWTH_LAYER_ITERS {
            emitted += rgs_core::kernel::grow_layer(sc.index(), &seed_sets, &events);
        }
        emitted
    };
    // Scalar first, then the active (vectorized, unless overridden)
    // backend, with the bit-identity contract asserted between them: the
    // two columns of one workload must emit exactly the same instances.
    seqdb::simd::force_backend(Some(seqdb::KernelBackend::Scalar));
    let (scalar_growth_seconds, scalar_emitted) = best_of(repeats, run);
    seqdb::simd::force_backend(None);
    let (growth_seconds, instance_growths) = best_of(repeats, run);
    assert_eq!(
        instance_growths, scalar_emitted,
        "scalar and vectorized kernels diverged on {name}"
    );
    let growths_per_second = instance_growths as f64 / growth_seconds.max(1e-12);
    let scalar_growths_per_second = instance_growths as f64 / scalar_growth_seconds.max(1e-12);
    GrowthKernelWorkload {
        dataset: format!("{name}: {}", stats.summary()),
        min_sup,
        event_elem_bytes: stats.event_elem_bytes,
        store_bytes: stats.store_bytes,
        store_bytes_wide: stats.store_bytes_wide,
        instance_growths,
        growth_seconds,
        growths_per_second,
        scalar_growth_seconds,
        scalar_growths_per_second,
        vector_speedup: growths_per_second / scalar_growths_per_second.max(1e-12),
    }
}

/// Runs the growth-kernel benchmark: the Fig. 6 avg-length-~103 workload
/// (directly comparable against the per-call-probe numbers in
/// `BENCH_columnar_store.json`) plus the avg-~200 / avg-~400 long-sequence
/// datasets and the skewed dense workload where batched kernels pay off
/// the most.
pub fn run_growth_kernel(scale: Scale, repeats: usize) -> GrowthKernelReport {
    let min_sup = datasets::fig5_fig6_threshold(scale);
    let mut workloads = Vec::new();

    let (fig6_name, fig6_db) = datasets::fig6_largest(scale);
    workloads.push(growth_kernel_workload(
        &fig6_name, &fig6_db, min_sup, repeats,
    ));

    for (name, db) in datasets::long_seq_datasets(scale) {
        workloads.push(growth_kernel_workload(&name, &db, min_sup, repeats));
    }

    GrowthKernelReport {
        scale: format!("{scale:?}").to_lowercase(),
        backend: seqdb::simd::active_backend().name().to_owned(),
        cpu_features: seqdb::simd::detected_features().to_owned(),
        baseline: "scalar_growths_per_second: the PR 8 scalar cursor kernels \
                   (gallop + branch-free search), re-measured in this very \
                   process via RGS_FORCE_SCALAR-equivalent dispatch - \
                   vector_speedup is therefore a same-machine, same-build \
                   comparison, never a cross-container one"
            .to_owned(),
        workloads,
    }
}

/// Compares a fresh growth-kernel report against a committed baseline
/// report (the checked-in `BENCH_growth_kernel.json`) and fails when any
/// shared workload regressed by more than `max_regression` (0.3 = 30%).
///
/// The baseline is parsed with the same hand-rolled discipline the reports
/// are written with: the `"growths_per_second"` values in workload order.
/// Workloads beyond the baseline's count (or a baseline with no numbers at
/// all) are skipped rather than failed, so the check tolerates an older or
/// hand-edited file.
pub fn check_growth_floor(
    report: &GrowthKernelReport,
    baseline_json: &str,
    max_regression: f64,
) -> Result<(), String> {
    let baseline: Vec<f64> = baseline_json
        .match_indices("\"growths_per_second\":")
        .filter_map(|(at, key)| {
            let rest = baseline_json.get(at + key.len()..)?;
            let number: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
                .collect();
            number.parse().ok()
        })
        .collect();
    if baseline.is_empty() {
        return Err("baseline has no growths_per_second values".to_owned());
    }
    for (w, &floor_base) in report.workloads.iter().zip(&baseline) {
        let floor = floor_base * (1.0 - max_regression);
        if w.growths_per_second < floor {
            return Err(format!(
                "{}: {:.0} growths/s is below the floor {:.0} \
                 (baseline {:.0}, max regression {:.0}%)",
                w.dataset,
                w.growths_per_second,
                floor,
                floor_base,
                max_regression * 100.0,
            ));
        }
    }
    Ok(())
}

/// Checks the vectorized-vs-scalar floor of a fresh growth-kernel report:
/// at least one **long-sequence** workload (every workload after the
/// Fig. 6 head entry) must reach `min_speedup` (for example 1.15 = the
/// vectorized path beats the scalar path by >= 15% on the same machine).
///
/// The check is skipped (Ok) when the active backend *is* scalar — a
/// forced-scalar lane measures `vector_speedup ~ 1.0` by construction and
/// must not fail on it.
pub fn check_vector_floor(report: &GrowthKernelReport, min_speedup: f64) -> Result<(), String> {
    if report.backend == "scalar" {
        return Ok(());
    }
    let long_seq = report.workloads.get(1..).unwrap_or(&[]);
    if long_seq.is_empty() {
        return Err("report has no long-sequence workloads".to_owned());
    }
    let best = long_seq
        .iter()
        .map(|w| w.vector_speedup)
        .fold(f64::MIN, f64::max);
    if best >= min_speedup {
        Ok(())
    } else {
        Err(format!(
            "no long-sequence workload reached the {min_speedup:.2}x \
             vectorized-vs-scalar floor on backend {} (best {best:.3}x)",
            report.backend,
        ))
    }
}

/// Batch-engine measurements of one workload: a stepped-threshold request
/// sweep mined one-by-one through the solo engine vs in one shared DFS
/// pass through [`PreparedDb::batch`].
#[derive(Debug, Clone)]
pub struct BatchWorkload {
    /// Dataset description (name + stats summary).
    pub dataset: String,
    /// Number of requests in the sweep.
    pub requests: usize,
    /// The support thresholds of the swept requests.
    pub min_sups: Vec<u64>,
    /// Best-of-N wall time of the sequential one-by-one loop.
    pub one_by_one_seconds: f64,
    /// Best-of-N wall time of the single [`PreparedDb::batch`] call.
    pub batched_seconds: f64,
    /// `one_by_one_seconds / batched_seconds`.
    pub batch_speedup: f64,
    /// Whether every batch member's patterns (and truncation flag) were
    /// bit-identical to its solo run.
    pub output_identical: bool,
}

impl BatchWorkload {
    fn to_json(&self) -> String {
        let sups: Vec<String> = self.min_sups.iter().map(u64::to_string).collect();
        format!(
            "{{\"dataset\": {}, \"requests\": {}, \"min_sups\": [{}], \
             \"one_by_one_seconds\": {:.6}, \"batched_seconds\": {:.6}, \
             \"batch_speedup\": {:.3}, \"output_identical\": {}}}",
            escape(&self.dataset),
            self.requests,
            sups.join(", "),
            self.one_by_one_seconds,
            self.batched_seconds,
            self.batch_speedup,
            self.output_identical,
        )
    }
}

/// The batch-engine benchmark report (`BENCH_batch.json`).
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Benchmark scale (dev/paper).
    pub scale: String,
    /// What the batched numbers are compared against.
    pub baseline: String,
    /// Per-workload measurements.
    pub workloads: Vec<BatchWorkload>,
}

impl BatchReport {
    /// Renders the report as a JSON object (hand-rolled, no serde).
    pub fn to_json(&self) -> String {
        let workloads: Vec<String> = self
            .workloads
            .iter()
            .map(|w| format!("    {}", w.to_json()))
            .collect();
        format!(
            "{{\n  \"benchmark\": \"batch_engine\",\n  \"scale\": {},\n  \
             \"baseline\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
            escape(&self.scale),
            escape(&self.baseline),
            workloads.join(",\n"),
        )
    }
}

/// Measures one batch workload: the stepped-threshold closed-mining sweep
/// of `min_sups` on `db`, one-by-one vs batched, plus the bit-identity
/// verdict across every member.
fn batch_workload(
    name: &str,
    db: &seqdb::SequenceDatabase,
    min_sups: &[u64],
    repeats: usize,
) -> BatchWorkload {
    let prepared = PreparedDb::new(db);
    let requests: Vec<MiningRequest> = min_sups
        .iter()
        .map(|&min_sup| MiningRequest {
            min_sup,
            mode: Mode::Closed,
            ..MiningRequest::default()
        })
        .collect();

    let (one_by_one_seconds, solo) = best_of(repeats, || {
        requests
            .iter()
            .map(|request| prepared.miner().with_request(request.clone()).run())
            .collect::<Vec<_>>()
    });
    let (batched_seconds, batched) = best_of(repeats, || prepared.batch(&requests));

    let output_identical = solo.len() == batched.len()
        && solo
            .iter()
            .zip(&batched)
            .all(|(s, b)| s.patterns == b.outcome.patterns && s.truncated == b.outcome.truncated);

    BatchWorkload {
        dataset: format!("{name}: {}", db.stats().summary()),
        requests: requests.len(),
        min_sups: min_sups.to_vec(),
        one_by_one_seconds,
        batched_seconds,
        batch_speedup: one_by_one_seconds / batched_seconds.max(1e-12),
        output_identical,
    }
}

/// Runs the batch-engine benchmark: the Figure 2 threshold sweep (the same
/// shape the features pipeline's `sweep_min_sup` issues) and a stepped
/// sweep on the heaviest Fig. 5 dataset. Both sweeps land in a single
/// shared-DFS group, so the batched run pays for one scan at the lowest
/// threshold where the loop pays for every step.
///
/// The Fig. 5 thresholds step from 40% to 60% of the sequence count
/// (200..=300 at dev scale). Closed mining on that dataset explodes
/// combinatorially below ~20% of the sequence count (minutes per solo run),
/// so the sweep sits in the band where every solo run finishes in well under
/// a second and the whole suite stays CI-sized.
pub fn run_batch(scale: Scale, repeats: usize) -> BatchReport {
    let mut workloads = Vec::new();

    let (fig2_name, fig2_db) = datasets::fig2_dataset(scale);
    let fig2_sups = datasets::fig2_thresholds(scale);
    workloads.push(batch_workload(&fig2_name, &fig2_db, &fig2_sups, repeats));

    let (fig5_name, fig5_db) = datasets::fig5_largest(scale);
    let seqs = fig5_db.num_sequences() as u64;
    let fig5_sups: Vec<u64> = (0..6).map(|i| seqs * (40 + 4 * i) / 100).collect();
    workloads.push(batch_workload(&fig5_name, &fig5_db, &fig5_sups, repeats));

    BatchReport {
        scale: format!("{scale:?}").to_lowercase(),
        baseline: "the same requests mined one-by-one through the solo engine \
                   (Miner::with_request) on the same prepared snapshot"
            .to_owned(),
        workloads,
    }
}

/// Checks the batch report against its regression floor: every workload
/// must be bit-identical to the one-by-one loop and at least `min_speedup`
/// times faster than it (1.2 = batched must beat the loop by 20%).
pub fn check_batch_floor(report: &BatchReport, min_speedup: f64) -> Result<(), String> {
    for w in &report.workloads {
        if !w.output_identical {
            return Err(format!(
                "{}: batched output diverged from the one-by-one loop",
                w.dataset
            ));
        }
        if w.batch_speedup < min_speedup {
            return Err(format!(
                "{}: batched run is only {:.2}x the one-by-one loop \
                 (floor {min_speedup:.2}x)",
                w.dataset, w.batch_speedup,
            ));
        }
    }
    Ok(())
}

/// Per-shard byte footprint of one sharded workload.
#[derive(Debug, Clone)]
pub struct ShardBytes {
    /// Shard number.
    pub shard: usize,
    /// Sequences in the shard.
    pub sequences: usize,
    /// Events in the shard (its share of the arena).
    pub events: usize,
    /// Bytes of the shard's store window.
    pub store_bytes: usize,
    /// Bytes of the shard's CSR inverted index.
    pub index_bytes: usize,
}

impl ShardBytes {
    fn to_json(&self) -> String {
        format!(
            "{{\"shard\": {}, \"sequences\": {}, \"events\": {}, \
             \"store_bytes\": {}, \"index_bytes\": {}}}",
            self.shard, self.sequences, self.events, self.store_bytes, self.index_bytes,
        )
    }
}

/// Sharding measurements of one Fig. 2/5/6 workload.
#[derive(Debug, Clone)]
pub struct ShardWorkload {
    /// Dataset description (name + stats summary).
    pub dataset: String,
    /// Shard count of the sharded preparation.
    pub shards: usize,
    /// Support threshold of the growth-throughput measurement.
    pub min_sup: u64,
    /// Best-of-N wall time of a flat [`PreparedDb::new`] (single index
    /// build — the PR 3 baseline's preparation path).
    pub flat_prepare_seconds: f64,
    /// Best-of-N wall time of `PreparedDb::new_sharded` (per-shard indexes
    /// built on the benchmark's worker threads).
    pub sharded_prepare_seconds: f64,
    /// `flat_prepare_seconds / sharded_prepare_seconds`.
    pub prepare_speedup: f64,
    /// Per-shard store/index byte footprints.
    pub shard_bytes: Vec<ShardBytes>,
    /// The growth workload measured: `"closed"` (full closed mining,
    /// flat-sequential vs shard-parallel — the Fig. 2 comparison against
    /// the PR 3 baseline's `fig2_closed_seconds`) or `"all-capped"`
    /// (pattern-capped sequential GSgrow on both sides, isolating the
    /// shard *routing* overhead — used on the Fig. 5/6 datasets whose
    /// closed output explodes at their thresholds).
    pub growth_workload: String,
    /// Instance growths performed by one growth run (see
    /// `growth_workload`).
    pub instance_growths: u64,
    /// Best-of-N wall time of the growth run on the **flat** snapshot,
    /// sequential.
    pub flat_growth_seconds: f64,
    /// Best-of-N wall time of the same run on the sharded snapshot
    /// (shard-parallel for the closed workload via the two-level
    /// shard × seed queue; sequential for the capped workload, where a
    /// per-seed pattern cap would inflate parallel buffers).
    pub sharded_growth_seconds: f64,
    /// `instance_growths / sharded_growth_seconds`.
    pub growths_per_second: f64,
    /// `flat_growth_seconds / sharded_growth_seconds`.
    pub growth_speedup: f64,
    /// Whether the sharded parallel pattern stream was bit-identical to
    /// the flat sequential one.
    pub output_identical: bool,
}

impl ShardWorkload {
    fn to_json(&self) -> String {
        let shard_bytes: Vec<String> = self.shard_bytes.iter().map(ShardBytes::to_json).collect();
        format!(
            "{{\"dataset\": {}, \"shards\": {}, \"min_sup\": {}, \
             \"flat_prepare_seconds\": {:.6}, \"sharded_prepare_seconds\": {:.6}, \
             \"prepare_speedup\": {:.3}, \"shard_bytes\": [{}], \
             \"growth_workload\": {}, \
             \"instance_growths\": {}, \"flat_growth_seconds\": {:.6}, \
             \"sharded_growth_seconds\": {:.6}, \"growths_per_second\": {:.0}, \
             \"growth_speedup\": {:.3}, \"output_identical\": {}}}",
            escape(&self.dataset),
            self.shards,
            self.min_sup,
            self.flat_prepare_seconds,
            self.sharded_prepare_seconds,
            self.prepare_speedup,
            shard_bytes.join(", "),
            escape(&self.growth_workload),
            self.instance_growths,
            self.flat_growth_seconds,
            self.sharded_growth_seconds,
            self.growths_per_second,
            self.growth_speedup,
            self.output_identical,
        )
    }
}

/// The sharding benchmark report (`BENCH_shard.json`).
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Benchmark scale (dev/paper).
    pub scale: String,
    /// Shard count used throughout.
    pub shards: usize,
    /// Worker threads of the sharded measurements.
    pub threads: usize,
    /// CPUs actually available — the ceiling on any parallel speedup.
    pub available_parallelism: usize,
    /// The PR 3 baseline file whose `growth_seconds` matches
    /// `flat_growth_seconds` here.
    pub baseline: String,
    /// Per-workload sharding measurements.
    pub workloads: Vec<ShardWorkload>,
}

impl ShardReport {
    /// Renders the report as a JSON object (hand-rolled, no serde).
    pub fn to_json(&self) -> String {
        let workloads: Vec<String> = self
            .workloads
            .iter()
            .map(|w| format!("    {}", w.to_json()))
            .collect();
        format!(
            "{{\n  \"benchmark\": \"sharded_store\",\n  \"scale\": {},\n  \
             \"shards\": {},\n  \"threads\": {},\n  \"available_parallelism\": {},\n  \
             \"baseline\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
            escape(&self.scale),
            self.shards,
            self.threads,
            self.available_parallelism,
            escape(&self.baseline),
            workloads.join(",\n"),
        )
    }
}

/// How [`shard_workload`] measures growth throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GrowthWorkload {
    /// Full closed mining, flat-sequential vs shard-parallel.
    Closed,
    /// Pattern-capped sequential GSgrow on both sides (routing overhead).
    AllCapped,
}

/// Measures one workload's sharding paths: prepare time flat vs sharded
/// (parallel per-shard index builds), per-shard byte footprints, and a
/// growth run flat vs sharded, with the bit-identity check the whole
/// refactor rests on.
fn shard_workload(
    name: &str,
    db: &seqdb::SequenceDatabase,
    min_sup: u64,
    shards: usize,
    threads: usize,
    repeats: usize,
    growth: GrowthWorkload,
) -> ShardWorkload {
    let (flat_prepare_seconds, flat) = best_of(repeats, || PreparedDb::new(db));
    let (sharded_prepare_seconds, sharded) =
        best_of(repeats, || PreparedDb::new_sharded(db, shards, threads));

    let shard_bytes: Vec<ShardBytes> = sharded
        .shard_footprints()
        .into_iter()
        .map(|f| ShardBytes {
            shard: f.shard,
            sequences: f.sequences,
            events: f.events,
            store_bytes: f.store_bytes,
            index_bytes: f.index_bytes,
        })
        .collect();

    // Closed mining (the paper's headline algorithm) has bounded output,
    // so the shard-parallel run pays no per-seed cap inflation; the capped
    // GSgrow workload must stay sequential on both sides (a per-seed
    // pattern cap would multiply parallel work) and isolates the pure
    // shard-routing overhead instead.
    let run = |prepared: &PreparedDb, run_threads: usize| {
        let mut sink = CountSink::new();
        let mut miner = prepared.miner().min_sup(min_sup).threads(run_threads);
        miner = match growth {
            GrowthWorkload::Closed => miner.mode(Mode::Closed),
            GrowthWorkload::AllCapped => miner.mode(Mode::All).max_patterns(GROWTH_PATTERN_CAP),
        };
        miner.run_with_sink(&mut sink)
    };
    let sharded_threads = match growth {
        GrowthWorkload::Closed => threads,
        GrowthWorkload::AllCapped => 1,
    };
    let (flat_growth_seconds, flat_report) = best_of(repeats, || run(&flat, 1));
    let (sharded_growth_seconds, _) = best_of(repeats, || run(&sharded, sharded_threads));

    // Bit-identity of the actual pattern stream (same settings both sides).
    let materialize = |prepared: &PreparedDb, run_threads: usize| {
        let mut miner = prepared.miner().min_sup(min_sup).threads(run_threads);
        miner = match growth {
            GrowthWorkload::Closed => miner.mode(Mode::Closed),
            GrowthWorkload::AllCapped => miner.mode(Mode::All).max_patterns(GROWTH_PATTERN_CAP),
        };
        miner.run()
    };
    let expected = materialize(&flat, 1);
    let actual = materialize(&sharded, sharded_threads);
    let output_identical = expected.patterns == actual.patterns;

    let instance_growths = flat_report.stats.instance_growths;
    ShardWorkload {
        dataset: format!("{name}: {}", db.stats().summary()),
        shards: sharded.shard_count(),
        min_sup,
        growth_workload: match growth {
            GrowthWorkload::Closed => "closed".to_owned(),
            GrowthWorkload::AllCapped => "all-capped".to_owned(),
        },
        flat_prepare_seconds,
        sharded_prepare_seconds,
        prepare_speedup: flat_prepare_seconds / sharded_prepare_seconds.max(1e-12),
        shard_bytes,
        instance_growths,
        flat_growth_seconds,
        sharded_growth_seconds,
        growths_per_second: instance_growths as f64 / sharded_growth_seconds.max(1e-12),
        growth_speedup: flat_growth_seconds / sharded_growth_seconds.max(1e-12),
        output_identical,
    }
}

/// Runs the sharding benchmark: the Fig. 2 closed-mining workload at its
/// lowest sweep threshold (the PR 2/3 benchmarks' heaviest setting that
/// still terminates comfortably) compared flat-sequential vs
/// shard-parallel, plus the Fig. 5/6 datasets — whose closed output
/// explodes at their thresholds — measured with the pattern-capped
/// sequential GSgrow run the columnar/snapshot benches use, isolating the
/// shard-routing overhead.
pub fn run_sharded(scale: Scale, shards: usize, threads: usize, repeats: usize) -> ShardReport {
    let mut workloads = Vec::new();

    let (fig2_name, fig2_db) = datasets::fig2_dataset(scale);
    let fig2_thresholds = datasets::fig2_thresholds(scale);
    let fig2_min_sup = fig2_thresholds[fig2_thresholds.len() - 1];
    workloads.push(shard_workload(
        &fig2_name,
        &fig2_db,
        fig2_min_sup,
        shards,
        threads,
        repeats,
        GrowthWorkload::Closed,
    ));

    let fig56_min_sup = datasets::fig5_fig6_threshold(scale);
    let (fig5_name, fig5_db) = datasets::fig5_largest(scale);
    workloads.push(shard_workload(
        &fig5_name,
        &fig5_db,
        fig56_min_sup,
        shards,
        threads,
        repeats,
        GrowthWorkload::AllCapped,
    ));
    let (fig6_name, fig6_db) = datasets::fig6_largest(scale);
    workloads.push(shard_workload(
        &fig6_name,
        &fig6_db,
        fig56_min_sup,
        shards,
        threads,
        repeats,
        GrowthWorkload::AllCapped,
    ));

    ShardReport {
        scale: format!("{scale:?}").to_lowercase(),
        shards,
        threads,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        baseline: "BENCH_columnar_store.json (PR 3)".to_owned(),
        workloads,
    }
}

/// Runs the snapshot cold-start benchmark on the Fig. 2/5/6 workloads.
pub fn run_snapshot(scale: Scale, repeats: usize) -> SnapshotReport {
    let mut workloads = Vec::new();

    let (fig2_name, fig2_db) = datasets::fig2_dataset(scale);
    let fig2_thresholds = datasets::fig2_thresholds(scale);
    let fig2_min_sup = fig2_thresholds[fig2_thresholds.len() - 1];
    workloads.push(snapshot_workload(
        &fig2_name,
        &fig2_db,
        fig2_min_sup,
        repeats,
    ));

    let fig56_min_sup = datasets::fig5_fig6_threshold(scale);
    let (fig5_name, fig5_db) = datasets::fig5_largest(scale);
    workloads.push(snapshot_workload(
        &fig5_name,
        &fig5_db,
        fig56_min_sup,
        repeats,
    ));
    let (fig6_name, fig6_db) = datasets::fig6_largest(scale);
    workloads.push(snapshot_workload(
        &fig6_name,
        &fig6_db,
        fig56_min_sup,
        repeats,
    ));

    SnapshotReport {
        scale: format!("{scale:?}").to_lowercase(),
        workloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_to_balanced_json() {
        let report = PreparedEngineReport {
            dataset: "toy \"quoted\"".into(),
            min_sup: 5,
            threads: 4,
            available_parallelism: 1,
            sequential_seconds: 1.0,
            parallel_seconds: 0.4,
            parallel_speedup: 2.5,
            parallel_output_identical: true,
            pipeline_dataset: "labeled toy".into(),
            sweep_min_sups: vec![2, 3],
            pipeline_fresh_seconds: 0.2,
            pipeline_prepared_seconds: 0.1,
            prepared_reuse_speedup: 2.0,
        };
        let json = report.to_json();
        assert!(json.contains("\"parallel_speedup\": 2.500"));
        assert!(json.contains("\"sweep_min_sups\": [2, 3]"));
        assert!(json.contains("\\\"quoted\\\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn best_of_returns_the_last_result_and_a_positive_time() {
        let (seconds, value) = best_of(3, || 42);
        assert_eq!(value, 42);
        assert!(seconds >= 0.0);
    }

    #[test]
    fn columnar_report_serializes_to_balanced_json() {
        let report = ColumnarStoreReport {
            scale: "dev".into(),
            baseline: "BENCH_prepared_engine.json (PR 2)".into(),
            fig2_closed_seconds: 0.25,
            workloads: vec![ColumnarWorkload {
                dataset: "toy".into(),
                min_sup: 4,
                pattern_cap: 50_000,
                index_build_seconds: 0.001,
                store_bytes: 1024,
                index_bytes: 2048,
                bytes_per_event: 12.0,
                bytes_per_instance: 12,
                instance_growths: 5000,
                growth_seconds: 0.5,
                growths_per_second: 10_000.0,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"columnar_store\""));
        assert!(json.contains("\"bytes_per_instance\": 12"));
        assert!(json.contains("\"growths_per_second\": 10000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn snapshot_report_serializes_to_balanced_json() {
        let report = SnapshotReport {
            scale: "dev".into(),
            workloads: vec![SnapshotWorkload {
                dataset: "toy".into(),
                min_sup: 4,
                build_from_text_seconds: 0.2,
                write_seconds: 0.01,
                open_snapshot_seconds: 0.002,
                cold_start_speedup: 100.0,
                snapshot_bytes: 4096,
                heap_bytes: 3500,
                mmap: true,
                roundtrip_identical: true,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"snapshot_cold_start\""));
        assert!(json.contains("\"cold_start_speedup\": 100.00"));
        assert!(json.contains("\"roundtrip_identical\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn snapshot_workload_round_trips_a_small_database() {
        let db = seqdb::SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let w = snapshot_workload("running example", &db, 2, 1);
        assert!(w.roundtrip_identical, "snapshot round trip diverged");
        assert!(w.snapshot_bytes as usize >= w.heap_bytes);
        assert!(w.build_from_text_seconds >= 0.0);
        assert!(w.open_snapshot_seconds >= 0.0);
        assert!(w.write_seconds >= 0.0);
    }

    #[test]
    fn shard_report_serializes_to_balanced_json() {
        let report = ShardReport {
            scale: "dev".into(),
            shards: 4,
            threads: 4,
            available_parallelism: 1,
            baseline: "BENCH_columnar_store.json (PR 3)".into(),
            workloads: vec![ShardWorkload {
                dataset: "toy".into(),
                shards: 4,
                min_sup: 4,
                growth_workload: "closed".into(),
                flat_prepare_seconds: 0.02,
                sharded_prepare_seconds: 0.01,
                prepare_speedup: 2.0,
                shard_bytes: vec![ShardBytes {
                    shard: 0,
                    sequences: 10,
                    events: 100,
                    store_bytes: 444,
                    index_bytes: 888,
                }],
                instance_growths: 1000,
                flat_growth_seconds: 0.5,
                sharded_growth_seconds: 0.25,
                growths_per_second: 4000.0,
                growth_speedup: 2.0,
                output_identical: true,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"sharded_store\""));
        assert!(json.contains("\"output_identical\": true"));
        assert!(json.contains("\"store_bytes\": 444"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn shard_workload_stays_bit_identical_on_a_small_database() {
        let db = seqdb::SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD", "ABABAB"]);
        let w = shard_workload("running example", &db, 2, 2, 2, 1, GrowthWorkload::Closed);
        let capped = shard_workload(
            "running example",
            &db,
            2,
            2,
            2,
            1,
            GrowthWorkload::AllCapped,
        );
        assert!(capped.output_identical, "capped sharded output diverged");
        assert!(w.output_identical, "sharded output diverged");
        assert_eq!(w.shards, 2);
        assert_eq!(w.shard_bytes.len(), 2);
        assert_eq!(
            w.shard_bytes.iter().map(|b| b.events).sum::<usize>(),
            db.total_length()
        );
        assert!(w.instance_growths > 0);
        assert!(w.flat_prepare_seconds >= 0.0 && w.sharded_prepare_seconds >= 0.0);
    }

    #[test]
    fn growth_kernel_report_serializes_to_balanced_json() {
        let report = GrowthKernelReport {
            scale: "dev".into(),
            backend: "avx2".into(),
            cpu_features: "sse2 avx2".into(),
            baseline: "same-machine scalar kernels (RGS_FORCE_SCALAR path)".into(),
            workloads: vec![GrowthKernelWorkload {
                dataset: "toy".into(),
                min_sup: 20,
                event_elem_bytes: 2,
                store_bytes: 1000,
                store_bytes_wide: 1900,
                instance_growths: 6000,
                growth_seconds: 0.001,
                growths_per_second: 6_000_000.0,
                scalar_growth_seconds: 0.0012,
                scalar_growths_per_second: 5_000_000.0,
                vector_speedup: 1.2,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"growth_kernel\""));
        assert!(json.contains("\"backend\": \"avx2\""));
        assert!(json.contains("\"cpu_features\": \"sse2 avx2\""));
        assert!(json.contains("\"event_elem_bytes\": 2"));
        assert!(json.contains("\"growths_per_second\": 6000000"));
        assert!(json.contains("\"vector_speedup\": 1.200"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn growth_kernel_workload_measures_a_small_database() {
        let db = seqdb::SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let w = growth_kernel_workload("running example", &db, 2, 1);
        assert_eq!(w.event_elem_bytes, 2, "4-event alphabet must be narrow");
        assert!(w.store_bytes < w.store_bytes_wide);
        assert!(w.instance_growths > 0);
        assert!(w.growths_per_second > 0.0);
    }

    #[test]
    fn growth_floor_check_accepts_equal_and_rejects_regressed_numbers() {
        let report = GrowthKernelReport {
            scale: "dev".into(),
            backend: "avx2".into(),
            cpu_features: "sse2 avx2".into(),
            baseline: "x".into(),
            workloads: vec![GrowthKernelWorkload {
                dataset: "toy".into(),
                min_sup: 20,
                event_elem_bytes: 2,
                store_bytes: 1000,
                store_bytes_wide: 1900,
                instance_growths: 6000,
                growth_seconds: 0.001,
                growths_per_second: 6_000_000.0,
                scalar_growth_seconds: 0.0012,
                scalar_growths_per_second: 5_000_000.0,
                vector_speedup: 1.2,
            }],
        };
        let same = report.to_json();
        assert!(check_growth_floor(&report, &same, 0.3).is_ok());
        // The vectorized-vs-scalar floor looks only at long-sequence
        // workloads (everything after the Fig. 6 head entry); with a lone
        // head workload there is nothing to certify.
        assert!(check_vector_floor(&report, 1.15).is_err());
        let mut long = report.clone();
        long.workloads.push(GrowthKernelWorkload {
            dataset: "long".into(),
            vector_speedup: 1.3,
            ..report.workloads.first().cloned().expect("head workload")
        });
        assert!(check_vector_floor(&long, 1.15).is_ok());
        assert!(check_vector_floor(&long, 1.35).is_err());
        // A forced-scalar run measures ~1.0x by construction; the floor
        // must not fail that lane.
        long.backend = "scalar".into();
        assert!(check_vector_floor(&long, 1.35).is_ok());
        // 30% headroom: a baseline up to 1/0.7 of the measurement passes.
        let faster = same.replace("6000000", "8000000");
        assert!(check_growth_floor(&report, &faster, 0.3).is_ok());
        // Beyond the floor fails with a descriptive message.
        let much_faster = same.replace("6000000", "10000000");
        let err = check_growth_floor(&report, &much_faster, 0.3).unwrap_err();
        assert!(err.contains("below the floor"), "{err}");
        // A baseline without numbers is an explicit error, not a pass.
        assert!(check_growth_floor(&report, "{}", 0.3).is_err());
    }

    #[test]
    fn batch_report_serializes_to_balanced_json() {
        let report = BatchReport {
            scale: "dev".into(),
            baseline: "one-by-one loop".into(),
            workloads: vec![BatchWorkload {
                dataset: "toy".into(),
                requests: 5,
                min_sups: vec![40, 30, 20, 15, 10],
                one_by_one_seconds: 0.5,
                batched_seconds: 0.2,
                batch_speedup: 2.5,
                output_identical: true,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"batch_engine\""));
        assert!(json.contains("\"min_sups\": [40, 30, 20, 15, 10]"));
        assert!(json.contains("\"batch_speedup\": 2.500"));
        assert!(json.contains("\"output_identical\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn batch_workload_stays_bit_identical_on_a_small_database() {
        let db = seqdb::SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let w = batch_workload("running example", &db, &[4, 3, 2], 1);
        assert!(w.output_identical, "batched sweep diverged from the loop");
        assert_eq!(w.requests, 3);
        assert!(w.one_by_one_seconds >= 0.0 && w.batched_seconds >= 0.0);
    }

    #[test]
    fn batch_floor_check_rejects_slow_or_divergent_workloads() {
        let good = BatchWorkload {
            dataset: "toy".into(),
            requests: 5,
            min_sups: vec![40, 30, 20, 15, 10],
            one_by_one_seconds: 0.5,
            batched_seconds: 0.2,
            batch_speedup: 2.5,
            output_identical: true,
        };
        let mut report = BatchReport {
            scale: "dev".into(),
            baseline: "one-by-one loop".into(),
            workloads: vec![good.clone()],
        };
        assert!(check_batch_floor(&report, 1.2).is_ok());

        report.workloads.push(BatchWorkload {
            batch_speedup: 1.1,
            ..good.clone()
        });
        let err = check_batch_floor(&report, 1.2).unwrap_err();
        assert!(err.contains("only 1.10x"), "{err}");

        report.workloads[1] = BatchWorkload {
            output_identical: false,
            ..good
        };
        let err = check_batch_floor(&report, 1.2).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn columnar_workload_measures_a_small_database() {
        let db = seqdb::SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let w = columnar_workload("running example", &db, 2, 1);
        assert!(w.index_build_seconds >= 0.0);
        assert!(w.store_bytes > 0);
        assert!(w.index_bytes > 0);
        assert_eq!(
            w.bytes_per_instance,
            std::mem::size_of::<rgs_core::Instance>()
        );
        assert!(w.instance_growths > 0);
        assert!(w.growths_per_second > 0.0);
    }
}
