//! Benchmark for the prepared-query engine: measures the parallel-mining
//! speedup and the prepared-reuse speedup on the features pipeline, and
//! renders the result as the `BENCH_prepared_engine.json` entry checked in
//! at the repository root.

use std::time::Instant;

use rgs_core::json::escape;
use rgs_core::{Mode, PreparedDb};
use rgs_features::pipeline::{run_pipeline, sweep_min_sup, PipelineConfig};
use rgs_features::LabeledDatabase;
use synthgen::labeled::LabeledTraceConfig;

use crate::datasets;
use crate::datasets::Scale;

/// The measured numbers of one prepared-engine benchmark run.
#[derive(Debug, Clone)]
pub struct PreparedEngineReport {
    /// Mining dataset description.
    pub dataset: String,
    /// Support threshold of the mining measurement.
    pub min_sup: u64,
    /// Worker threads of the parallel measurement.
    pub threads: usize,
    /// CPUs actually available to this process — the hard ceiling on any
    /// parallel speedup (a 1-CPU container cannot speed up, only stay
    /// bit-identical).
    pub available_parallelism: usize,
    /// Best-of-N sequential closed-mining wall time (prepared snapshot).
    pub sequential_seconds: f64,
    /// Best-of-N parallel closed-mining wall time (same snapshot).
    pub parallel_seconds: f64,
    /// `sequential_seconds / parallel_seconds`.
    pub parallel_speedup: f64,
    /// Whether the parallel pattern list was bit-identical to sequential.
    pub parallel_output_identical: bool,
    /// Pipeline dataset description.
    pub pipeline_dataset: String,
    /// The support thresholds of the pipeline sweep.
    pub sweep_min_sups: Vec<u64>,
    /// Wall time of the sweep re-preparing per call ([`run_pipeline`]).
    pub pipeline_fresh_seconds: f64,
    /// Wall time of the sweep hoisting one snapshot ([`sweep_min_sup`]).
    pub pipeline_prepared_seconds: f64,
    /// `pipeline_fresh_seconds / pipeline_prepared_seconds`.
    pub prepared_reuse_speedup: f64,
}

impl PreparedEngineReport {
    /// Renders the report as a JSON object (hand-rolled, no serde).
    pub fn to_json(&self) -> String {
        let sweep: Vec<String> = self.sweep_min_sups.iter().map(u64::to_string).collect();
        format!(
            "{{\n  \"benchmark\": \"prepared_engine\",\n  \"dataset\": {},\n  \"min_sup\": {},\n  \
             \"threads\": {},\n  \"available_parallelism\": {},\n  \
             \"sequential_seconds\": {:.6},\n  \"parallel_seconds\": {:.6},\n  \
             \"parallel_speedup\": {:.3},\n  \"parallel_output_identical\": {},\n  \
             \"pipeline_dataset\": {},\n  \"sweep_min_sups\": [{}],\n  \
             \"pipeline_fresh_seconds\": {:.6},\n  \"pipeline_prepared_seconds\": {:.6},\n  \
             \"prepared_reuse_speedup\": {:.3}\n}}\n",
            escape(&self.dataset),
            self.min_sup,
            self.threads,
            self.available_parallelism,
            self.sequential_seconds,
            self.parallel_seconds,
            self.parallel_speedup,
            self.parallel_output_identical,
            escape(&self.pipeline_dataset),
            sweep.join(", "),
            self.pipeline_fresh_seconds,
            self.pipeline_prepared_seconds,
            self.prepared_reuse_speedup,
        )
    }
}

/// Best-of-`repeats` wall time of `f`.
fn best_of<R>(repeats: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let start = Instant::now();
    let mut result = f();
    best = best.min(start.elapsed().as_secs_f64());
    for _ in 1..repeats.max(1) {
        let start = Instant::now();
        result = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, result)
}

/// Runs the benchmark: parallel closed mining vs sequential on a prepared
/// snapshot, and the features-pipeline threshold sweep with and without
/// prepared reuse.
pub fn run(scale: Scale, threads: usize, repeats: usize) -> PreparedEngineReport {
    // -- Parallel speedup: closed mining on the Figure 2 QUEST dataset at
    // the lowest threshold of its sweep (the heaviest setting that still
    // terminates comfortably at dev scale).
    let (name, db) = datasets::fig2_dataset(scale);
    let thresholds = datasets::fig2_thresholds(scale);
    let min_sup = thresholds[thresholds.len() - 1];
    let prepared = PreparedDb::new(&db);
    let (sequential_seconds, sequential) = best_of(repeats, || {
        prepared.miner().min_sup(min_sup).mode(Mode::Closed).run()
    });
    let (parallel_seconds, parallel) = best_of(repeats, || {
        prepared
            .miner()
            .min_sup(min_sup)
            .mode(Mode::Closed)
            .threads(threads)
            .run()
    });
    let parallel_output_identical = sequential.patterns == parallel.patterns;

    // -- Prepared-reuse speedup: the model-selection threshold sweep of the
    // features pipeline, re-preparing per call vs hoisting one snapshot.
    // The sweep walks down from a very high threshold (the usual "find the
    // highest threshold that still yields features" search), so individual
    // queries are cheap and the per-call preparation is the waste.
    let (pipeline_db, labels) = LabeledTraceConfig::default()
        .with_traces_per_class(if scale == Scale::Paper { 1_200 } else { 400 })
        .generate();
    let data = LabeledDatabase::new(pipeline_db, labels).expect("aligned labels");
    let base = PipelineConfig::new(40, 6).with_max_pattern_length(3);
    let top_occurrences = {
        let prepared = PreparedDb::new(data.database());
        data.database()
            .catalog()
            .ids()
            .map(|e| prepared.occurrence_count(e))
            .max()
            .unwrap_or(1)
    };
    let sweep_min_sups: Vec<u64> = (1..=8).map(|i| top_occurrences * (8 + i) / 16).collect();
    let (pipeline_fresh_seconds, _) = best_of(repeats, || {
        for &min_sup in &sweep_min_sups {
            let config = PipelineConfig {
                min_sup,
                ..base.clone()
            };
            run_pipeline(&data, &config).expect("pipeline runs");
        }
    });
    let (pipeline_prepared_seconds, _) = best_of(repeats, || {
        sweep_min_sup(&data, &sweep_min_sups, &base).expect("sweep runs");
    });

    PreparedEngineReport {
        dataset: format!("{name}: {}", db.stats().summary()),
        min_sup,
        threads,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        sequential_seconds,
        parallel_seconds,
        parallel_speedup: sequential_seconds / parallel_seconds.max(1e-12),
        parallel_output_identical,
        pipeline_dataset: data.summary(),
        sweep_min_sups,
        pipeline_fresh_seconds,
        pipeline_prepared_seconds,
        prepared_reuse_speedup: pipeline_fresh_seconds / pipeline_prepared_seconds.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_to_balanced_json() {
        let report = PreparedEngineReport {
            dataset: "toy \"quoted\"".into(),
            min_sup: 5,
            threads: 4,
            available_parallelism: 1,
            sequential_seconds: 1.0,
            parallel_seconds: 0.4,
            parallel_speedup: 2.5,
            parallel_output_identical: true,
            pipeline_dataset: "labeled toy".into(),
            sweep_min_sups: vec![2, 3],
            pipeline_fresh_seconds: 0.2,
            pipeline_prepared_seconds: 0.1,
            prepared_reuse_speedup: 2.0,
        };
        let json = report.to_json();
        assert!(json.contains("\"parallel_speedup\": 2.500"));
        assert!(json.contains("\"sweep_min_sups\": [2, 3]"));
        assert!(json.contains("\\\"quoted\\\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn best_of_returns_the_last_result_and_a_positive_time() {
        let (seconds, value) = best_of(3, || 42);
        assert_eq!(value, 42);
        assert!(seconds >= 0.0);
    }
}
