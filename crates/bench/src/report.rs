//! Reporting utilities: experiment reports rendered as Markdown tables,
//! CSV, and JSON.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::runner::RunRecord;

/// One row of an experiment report: a parameter setting (e.g. a support
/// threshold or a dataset size) plus the records of every miner run at that
/// setting.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// The value of the varied parameter (e.g. `min_sup = 10` or
    /// `D = 5K sequences`).
    pub parameter: String,
    /// The miner runs at this setting.
    pub runs: Vec<RunRecord>,
}

/// A full experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Short experiment identifier (e.g. `fig2`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Description of the dataset used (name + summary statistics).
    pub dataset: String,
    /// What the paper reports for this experiment (the expected shape).
    pub paper_expectation: String,
    /// The measured rows.
    pub rows: Vec<ReportRow>,
    /// Free-form notes (e.g. observed shape statements checked by tests).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, dataset: &str, paper_expectation: &str) -> Self {
        Self {
            id: id.to_owned(),
            title: title.to_owned(),
            dataset: dataset.to_owned(),
            paper_expectation: paper_expectation.to_owned(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, parameter: impl Into<String>, runs: Vec<RunRecord>) {
        self.rows.push(ReportRow {
            parameter: parameter.into(),
            runs,
        });
    }

    /// Appends a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// The distinct miner labels appearing in the report, in first-seen
    /// order (they become the column groups of the Markdown table).
    pub fn miner_labels(&self) -> Vec<&'static str> {
        let mut labels = Vec::new();
        for row in &self.rows {
            for run in &row.runs {
                let label = run.miner.label();
                if !labels.contains(&label) {
                    labels.push(label);
                }
            }
        }
        labels
    }

    /// Renders the report as Markdown (title, dataset, expectation, one
    /// table with a runtime and a pattern-count column per miner, notes).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = writeln!(out);
        let _ = writeln!(out, "*Dataset:* {}", self.dataset);
        let _ = writeln!(out);
        let _ = writeln!(out, "*Paper expectation:* {}", self.paper_expectation);
        let _ = writeln!(out);
        let labels = self.miner_labels();
        let mut header = String::from("| parameter |");
        let mut rule = String::from("|---|");
        for label in &labels {
            let _ = write!(header, " {label} runtime (s) | {label} #patterns |");
            rule.push_str("---|---|");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let mut line = format!("| {} |", row.parameter);
            for label in &labels {
                match row.runs.iter().find(|r| r.miner.label() == *label) {
                    Some(run) => {
                        let patterns = if run.truncated {
                            format!(">{} (cut off)", run.num_patterns)
                        } else {
                            run.num_patterns.to_string()
                        };
                        let _ = write!(line, " {:.3} | {} |", run.runtime_seconds, patterns);
                    }
                    None => {
                        let _ = write!(line, " – | – |");
                    }
                }
            }
            let _ = writeln!(out, "{line}");
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out);
            for note in &self.notes {
                let _ = writeln!(out, "* {note}");
            }
        }
        out
    }

    /// Renders the report as CSV (`parameter,miner,min_sup,runtime_seconds,
    /// num_patterns,truncated`).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("parameter,miner,min_sup,runtime_seconds,num_patterns,truncated\n");
        for row in &self.rows {
            for run in &row.runs {
                let _ = writeln!(
                    out,
                    "{},{},{},{:.6},{},{}",
                    row.parameter,
                    run.miner.label(),
                    run.min_sup,
                    run.runtime_seconds,
                    run.num_patterns,
                    run.truncated
                );
            }
        }
        out
    }

    /// Renders the report as JSON (hand-rolled so the harness works without
    /// a serialization dependency; the schema mirrors the struct fields).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"id\": {},", json_string(&self.id));
        let _ = writeln!(out, "  \"title\": {},", json_string(&self.title));
        let _ = writeln!(out, "  \"dataset\": {},", json_string(&self.dataset));
        let _ = writeln!(
            out,
            "  \"paper_expectation\": {},",
            json_string(&self.paper_expectation)
        );
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"parameter\": {}, \"runs\": [",
                json_string(&row.parameter)
            );
            for (j, run) in row.runs.iter().enumerate() {
                let _ = write!(
                    out,
                    "      {{\"miner\": {}, \"min_sup\": {}, \"runtime_seconds\": {:.6}, \
                     \"num_patterns\": {}, \"truncated\": {}}}",
                    json_string(run.miner.label()),
                    run.min_sup,
                    run.runtime_seconds,
                    run.num_patterns,
                    run.truncated
                );
                out.push_str(if j + 1 < row.runs.len() { ",\n" } else { "\n" });
            }
            out.push_str("    ]}");
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"notes\": [");
        for (i, note) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(note));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Writes the Markdown, CSV and JSON renderings of the report into
    /// `dir`, named after the experiment id.
    pub fn write_to_dir(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.md", self.id)), self.to_markdown())?;
        fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())?;
        fs::write(dir.join(format!("{}.json", self.id)), self.to_json())?;
        Ok(())
    }
}

/// Escapes `s` as a JSON string literal (shared with the rest of the
/// workspace through `rgs_core::json`).
fn json_string(s: &str) -> String {
    rgs_core::json::escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::MinerKind;

    fn sample_report() -> ExperimentReport {
        let mut report = ExperimentReport::new("figX", "demo", "toy dataset", "closed << all");
        report.push_row(
            "min_sup=2",
            vec![
                RunRecord {
                    miner: MinerKind::GsGrow,
                    min_sup: 2,
                    runtime_seconds: 0.5,
                    num_patterns: 100,
                    truncated: false,
                },
                RunRecord {
                    miner: MinerKind::CloGsGrow,
                    min_sup: 2,
                    runtime_seconds: 0.1,
                    num_patterns: 10,
                    truncated: false,
                },
            ],
        );
        report.push_note("closed is 10x smaller");
        report
    }

    #[test]
    fn markdown_contains_all_columns_and_notes() {
        let md = sample_report().to_markdown();
        assert!(md.contains("## figX — demo"));
        assert!(md.contains("All (GSgrow) runtime (s)"));
        assert!(md.contains("Closed (CloGSgrow) #patterns"));
        assert!(md.contains("| min_sup=2 |"));
        assert!(md.contains("closed is 10x smaller"));
    }

    #[test]
    fn truncated_runs_are_marked_as_cut_off() {
        let mut report = sample_report();
        report.rows[0].runs[0].truncated = true;
        let md = report.to_markdown();
        assert!(md.contains("cut off"));
    }

    #[test]
    fn csv_has_one_line_per_run_plus_header() {
        let csv = sample_report().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("parameter,miner"));
    }

    #[test]
    fn json_contains_every_field_and_escapes_strings() {
        let mut report = sample_report();
        report.push_note("quote \" and backslash \\ survive");
        let json = report.to_json();
        assert!(json.contains("\"id\": \"figX\""));
        assert!(json.contains("\"miner\": \"All (GSgrow)\""));
        assert!(json.contains("\"num_patterns\": 100"));
        assert!(json.contains("\"truncated\": false"));
        assert!(json.contains("quote \\\" and backslash \\\\ survive"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    #[test]
    fn write_to_dir_creates_three_files() {
        let dir = std::env::temp_dir().join("rgs_bench_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        sample_report().write_to_dir(&dir).unwrap();
        assert!(dir.join("figX.md").exists());
        assert!(dir.join("figX.csv").exists());
        assert!(dir.join("figX.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_miner_cells_render_as_dashes() {
        let mut report = sample_report();
        report.push_row(
            "min_sup=1",
            vec![RunRecord {
                miner: MinerKind::CloGsGrow,
                min_sup: 1,
                runtime_seconds: 0.2,
                num_patterns: 20,
                truncated: false,
            }],
        );
        let md = report.to_markdown();
        assert!(md.contains("| min_sup=1 | – | – | 0.200 | 20 |"));
    }
}
