//! Prepared-engine benchmark binary.
//!
//! Measures the parallel-mining speedup and the prepared-reuse speedup on
//! the features pipeline (`BENCH_prepared_engine.json`), the columnar
//! storage layer (`BENCH_columnar_store.json`), and the snapshot
//! cold-start paths — build-from-text vs open-snapshot latency, bytes on
//! disk vs arena bytes (`BENCH_snapshot.json`). All three files land at
//! the repository root by convention.
//!
//! ```text
//! prepared_bench [--scale dev|paper] [--threads N] [--shards N] [--repeats N]
//!                [--out FILE] [--columnar-out FILE] [--snapshot-out FILE]
//!                [--sharded-out FILE] [--growth-out FILE] [--batch-out FILE]
//!                [--growth-floor BASELINE_FILE] [--vector-floor SPEEDUP]
//!                [--batch-floor SPEEDUP]
//!                [--only prepared|columnar|snapshot|sharded|growth|batch]
//! ```
//!
//! `--only` restricts the run to one benchmark (and its output file) —
//! CI uses `--only snapshot` / `--only sharded` so each artifact job pays
//! only for its own suite. The sharded suite (`BENCH_shard.json`) measures
//! flat vs sharded prepare time, per-shard byte footprints, and
//! shard-parallel growth throughput against the PR 3 columnar baseline.
//! The growth suite (`BENCH_growth_kernel.json`) measures the vectorized
//! growth kernels (and the forced-scalar path, same process) on
//! long-sequence workloads; `--growth-floor` compares the fresh numbers
//! against a committed baseline file and fails the run when any workload
//! regressed by more than 30%, and `--vector-floor 1.15` fails it when no
//! long-sequence workload reaches a 1.15x vectorized-vs-scalar speedup. The batch suite
//! (`BENCH_batch.json`) mines stepped-threshold request sweeps one-by-one
//! vs in one shared DFS pass; `--batch-floor 1.2` fails the run when any
//! sweep's batched run is less than 1.2x the one-by-one loop or its output
//! diverges from it.

use std::path::PathBuf;
use std::process::ExitCode;

use rgs_bench::datasets::Scale;
use rgs_bench::prepared_bench;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Dev;
    let mut threads = 4usize;
    let mut shards = 4usize;
    let mut repeats = 3usize;
    let mut out = PathBuf::from("BENCH_prepared_engine.json");
    let mut columnar_out = PathBuf::from("BENCH_columnar_store.json");
    let mut snapshot_out = PathBuf::from("BENCH_snapshot.json");
    let mut sharded_out = PathBuf::from("BENCH_shard.json");
    let mut growth_out = PathBuf::from("BENCH_growth_kernel.json");
    let mut growth_floor: Option<PathBuf> = None;
    let mut vector_floor: Option<f64> = None;
    let mut batch_out = PathBuf::from("BENCH_batch.json");
    let mut batch_floor: Option<f64> = None;
    // Which benchmarks to run:
    // (prepared, columnar, snapshot, sharded, growth, batch).
    let mut phases = (true, true, true, true, true, true);

    let mut i = 0;
    while i < args.len() {
        let need_value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--scale" => match need_value(&mut i).as_deref().and_then(Scale::parse) {
                Some(s) => scale = s,
                None => {
                    eprintln!("--scale needs dev|paper");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match need_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => threads = n,
                None => {
                    eprintln!("--threads needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match need_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => shards = n,
                None => {
                    eprintln!("--shards needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--repeats" => match need_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => repeats = n,
                None => {
                    eprintln!("--repeats needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match need_value(&mut i) {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--columnar-out" => match need_value(&mut i) {
                Some(path) => columnar_out = PathBuf::from(path),
                None => {
                    eprintln!("--columnar-out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--snapshot-out" => match need_value(&mut i) {
                Some(path) => snapshot_out = PathBuf::from(path),
                None => {
                    eprintln!("--snapshot-out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--sharded-out" => match need_value(&mut i) {
                Some(path) => sharded_out = PathBuf::from(path),
                None => {
                    eprintln!("--sharded-out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--growth-out" => match need_value(&mut i) {
                Some(path) => growth_out = PathBuf::from(path),
                None => {
                    eprintln!("--growth-out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--growth-floor" => match need_value(&mut i) {
                Some(path) => growth_floor = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--growth-floor needs a baseline file path");
                    return ExitCode::FAILURE;
                }
            },
            "--vector-floor" => match need_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(speedup) => vector_floor = Some(speedup),
                None => {
                    eprintln!("--vector-floor needs a minimum speedup (e.g. 1.15)");
                    return ExitCode::FAILURE;
                }
            },
            "--batch-out" => match need_value(&mut i) {
                Some(path) => batch_out = PathBuf::from(path),
                None => {
                    eprintln!("--batch-out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--batch-floor" => match need_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(speedup) => batch_floor = Some(speedup),
                None => {
                    eprintln!("--batch-floor needs a minimum speedup (e.g. 1.2)");
                    return ExitCode::FAILURE;
                }
            },
            "--only" => match need_value(&mut i).as_deref() {
                Some("prepared") => phases = (true, false, false, false, false, false),
                Some("columnar") => phases = (false, true, false, false, false, false),
                Some("snapshot") => phases = (false, false, true, false, false, false),
                Some("sharded") => phases = (false, false, false, true, false, false),
                Some("growth") => phases = (false, false, false, false, true, false),
                Some("batch") => phases = (false, false, false, false, false, true),
                _ => {
                    eprintln!("--only needs prepared|columnar|snapshot|sharded|growth|batch");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "prepared_bench [--scale dev|paper] [--threads N] [--shards N] \
                     [--repeats N] [--out FILE] [--columnar-out FILE] \
                     [--snapshot-out FILE] [--sharded-out FILE] [--growth-out FILE] \
                     [--batch-out FILE] [--growth-floor BASELINE_FILE] \
                     [--vector-floor SPEEDUP] [--batch-floor SPEEDUP] \
                     [--only prepared|columnar|snapshot|sharded|growth|batch]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if phases.0 {
        let report = prepared_bench::run(scale, threads, repeats);
        let json = report.to_json();
        println!("{json}");
        println!(
            "# parallel speedup: {:.2}x ({} threads, identical output: {}); \
             prepared-reuse speedup on the pipeline sweep: {:.2}x",
            report.parallel_speedup,
            report.threads,
            report.parallel_output_identical,
            report.prepared_reuse_speedup,
        );
        if let Err(err) = std::fs::write(&out, &json) {
            eprintln!("error: cannot write {}: {err}", out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("# written to {}", out.display());
    }

    if phases.1 {
        // Storage-layer measurements of the columnar refactor (index build
        // time, byte footprints, instance-growth throughput on Fig. 2/5/6).
        let columnar = prepared_bench::run_columnar(scale, repeats);
        let columnar_json = columnar.to_json();
        println!("{columnar_json}");
        for w in &columnar.workloads {
            println!(
                "# {}: {:.0} growths/s, index build {:.4}s, {:.1} B/event",
                w.dataset, w.growths_per_second, w.index_build_seconds, w.bytes_per_event
            );
        }
        if let Err(err) = std::fs::write(&columnar_out, &columnar_json) {
            eprintln!("error: cannot write {}: {err}", columnar_out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("# written to {}", columnar_out.display());
    }

    if phases.2 {
        // Snapshot cold starts: build-from-text vs open-snapshot on the same
        // workloads, plus bytes on disk vs arena bytes and the bit-identical
        // round-trip check.
        let snapshot = prepared_bench::run_snapshot(scale, repeats);
        let snapshot_json = snapshot.to_json();
        println!("{snapshot_json}");
        for w in &snapshot.workloads {
            println!(
                "# {}: cold open {:.2}x faster than rebuild ({:.4}s vs {:.4}s), \
                 {} bytes on disk, identical output: {}",
                w.dataset,
                w.cold_start_speedup,
                w.open_snapshot_seconds,
                w.build_from_text_seconds,
                w.snapshot_bytes,
                w.roundtrip_identical,
            );
        }
        if let Err(err) = std::fs::write(&snapshot_out, &snapshot_json) {
            eprintln!("error: cannot write {}: {err}", snapshot_out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("# written to {}", snapshot_out.display());
    }

    if phases.3 {
        // Sharded stores: flat vs sharded prepare, per-shard bytes, and
        // shard-parallel growth throughput against the PR 3 baseline, with
        // the bit-identity check.
        let sharded = prepared_bench::run_sharded(scale, shards, threads, repeats);
        let sharded_json = sharded.to_json();
        println!("{sharded_json}");
        for w in &sharded.workloads {
            println!(
                "# {}: {} shards, prepare {:.2}x, growth {:.2}x ({:.0} growths/s), \
                 identical output: {}",
                w.dataset,
                w.shards,
                w.prepare_speedup,
                w.growth_speedup,
                w.growths_per_second,
                w.output_identical,
            );
        }
        if let Err(err) = std::fs::write(&sharded_out, &sharded_json) {
            eprintln!("error: cannot write {}: {err}", sharded_out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("# written to {}", sharded_out.display());
    }

    if phases.4 {
        // Growth kernels: batched-cursor instance-growth throughput on the
        // avg-~103/~200/~400 workloads plus the narrow-column byte savings,
        // with an optional regression floor against a committed baseline.
        let growth = prepared_bench::run_growth_kernel(scale, repeats);
        let growth_json = growth.to_json();
        println!("{growth_json}");
        for w in &growth.workloads {
            let saved = w.store_bytes_wide.saturating_sub(w.store_bytes);
            println!(
                "# {}: {:.0} growths/s on {} ({:.2}x vs scalar {:.0}), \
                 {}-byte events, {} store bytes ({} saved vs wide)",
                w.dataset,
                w.growths_per_second,
                growth.backend,
                w.vector_speedup,
                w.scalar_growths_per_second,
                w.event_elem_bytes,
                w.store_bytes,
                saved,
            );
        }
        if let Some(min_speedup) = vector_floor {
            if let Err(err) = prepared_bench::check_vector_floor(&growth, min_speedup) {
                eprintln!("error: vectorized-kernel floor violated: {err}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "# vector floor OK (backend {}, >= {min_speedup:.2}x scalar on a \
                 long-sequence workload)",
                growth.backend
            );
        }
        if let Some(baseline_path) = &growth_floor {
            match std::fs::read_to_string(baseline_path) {
                Ok(baseline) => {
                    if let Err(err) = prepared_bench::check_growth_floor(&growth, &baseline, 0.30) {
                        eprintln!("error: growth-throughput floor violated: {err}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!(
                        "# growth floor OK against {} (max regression 30%)",
                        baseline_path.display()
                    );
                }
                Err(err) => {
                    eprintln!("error: cannot read {}: {err}", baseline_path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(err) = std::fs::write(&growth_out, &growth_json) {
            eprintln!("error: cannot write {}: {err}", growth_out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("# written to {}", growth_out.display());
    }

    if phases.5 {
        // Batch engine: stepped-threshold request sweeps mined one-by-one
        // vs in one shared DFS pass, with the bit-identity verdict and an
        // optional minimum-speedup floor.
        let batch = prepared_bench::run_batch(scale, repeats);
        let batch_json = batch.to_json();
        println!("{batch_json}");
        for w in &batch.workloads {
            println!(
                "# {}: {} requests batched {:.2}x faster than one-by-one \
                 ({:.4}s vs {:.4}s), identical output: {}",
                w.dataset,
                w.requests,
                w.batch_speedup,
                w.batched_seconds,
                w.one_by_one_seconds,
                w.output_identical,
            );
        }
        if let Some(min_speedup) = batch_floor {
            if let Err(err) = prepared_bench::check_batch_floor(&batch, min_speedup) {
                eprintln!("error: batch-speedup floor violated: {err}");
                return ExitCode::FAILURE;
            }
            eprintln!("# batch floor OK (every sweep >= {min_speedup:.2}x, bit-identical)");
        }
        if let Err(err) = std::fs::write(&batch_out, &batch_json) {
            eprintln!("error: cannot write {}: {err}", batch_out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("# written to {}", batch_out.display());
    }
    ExitCode::SUCCESS
}
