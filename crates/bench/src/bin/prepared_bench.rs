//! Prepared-engine benchmark binary.
//!
//! Measures the parallel-mining speedup and the prepared-reuse speedup on
//! the features pipeline and writes the result to
//! `BENCH_prepared_engine.json` (repository root by convention).
//!
//! ```text
//! prepared_bench [--scale dev|paper] [--threads N] [--repeats N] [--out FILE]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use rgs_bench::datasets::Scale;
use rgs_bench::prepared_bench;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Dev;
    let mut threads = 4usize;
    let mut repeats = 3usize;
    let mut out = PathBuf::from("BENCH_prepared_engine.json");
    let mut columnar_out = PathBuf::from("BENCH_columnar_store.json");

    let mut i = 0;
    while i < args.len() {
        let need_value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--scale" => match need_value(&mut i).as_deref().and_then(Scale::parse) {
                Some(s) => scale = s,
                None => {
                    eprintln!("--scale needs dev|paper");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match need_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => threads = n,
                None => {
                    eprintln!("--threads needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--repeats" => match need_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => repeats = n,
                None => {
                    eprintln!("--repeats needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match need_value(&mut i) {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--columnar-out" => match need_value(&mut i) {
                Some(path) => columnar_out = PathBuf::from(path),
                None => {
                    eprintln!("--columnar-out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "prepared_bench [--scale dev|paper] [--threads N] [--repeats N] \
                     [--out FILE] [--columnar-out FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let report = prepared_bench::run(scale, threads, repeats);
    let json = report.to_json();
    println!("{json}");
    println!(
        "# parallel speedup: {:.2}x ({} threads, identical output: {}); \
         prepared-reuse speedup on the pipeline sweep: {:.2}x",
        report.parallel_speedup,
        report.threads,
        report.parallel_output_identical,
        report.prepared_reuse_speedup,
    );
    if let Err(err) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {}: {err}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("# written to {}", out.display());

    // Storage-layer measurements of the columnar refactor (index build
    // time, byte footprints, instance-growth throughput on Fig. 2/5/6).
    let columnar = prepared_bench::run_columnar(scale, repeats);
    let columnar_json = columnar.to_json();
    println!("{columnar_json}");
    for w in &columnar.workloads {
        println!(
            "# {}: {:.0} growths/s, index build {:.4}s, {:.1} B/event",
            w.dataset, w.growths_per_second, w.index_build_seconds, w.bytes_per_event
        );
    }
    if let Err(err) = std::fs::write(&columnar_out, &columnar_json) {
        eprintln!("error: cannot write {}: {err}", columnar_out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("# written to {}", columnar_out.display());
    ExitCode::SUCCESS
}
