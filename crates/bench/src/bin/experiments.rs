//! Experiment harness binary.
//!
//! Regenerates every figure of the paper's evaluation, the Table I
//! semantics comparison, the baseline comparison and the case study, and
//! writes Markdown/CSV/JSON reports under `results/`.
//!
//! ```text
//! experiments [--scale dev|paper] [--out DIR] [table1|fig2|fig3|fig4|fig5|fig6|baselines|case-study|all]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use rgs_bench::datasets::Scale;
use rgs_bench::experiments;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Dev;
    let mut out_dir = PathBuf::from("results");
    let mut targets: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("--scale needs a value (dev|paper)");
                    return ExitCode::FAILURE;
                };
                match Scale::parse(value) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{value}' (expected dev|paper)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => {
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                };
                out_dir = PathBuf::from(value);
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => targets.push(other.to_owned()),
        }
        i += 1;
    }
    if targets.is_empty() {
        targets.push("all".to_owned());
    }

    let run_all = targets.iter().any(|t| t == "all");
    let wants = |name: &str| run_all || targets.iter().any(|t| t == name);
    let mut ran_any = false;

    if wants("table1") {
        emit(&experiments::table1(), &out_dir);
        ran_any = true;
    }
    if wants("fig2") {
        emit(&experiments::fig2(scale), &out_dir);
        ran_any = true;
    }
    if wants("fig3") {
        emit(&experiments::fig3(scale), &out_dir);
        ran_any = true;
    }
    if wants("fig4") {
        emit(&experiments::fig4(scale), &out_dir);
        ran_any = true;
    }
    if wants("fig5") {
        emit(&experiments::fig5(scale), &out_dir);
        ran_any = true;
    }
    if wants("fig6") {
        emit(&experiments::fig6(scale), &out_dir);
        ran_any = true;
    }
    if wants("baselines") {
        emit(&experiments::baselines_comparison(scale), &out_dir);
        ran_any = true;
    }
    if wants("case-study") || wants("case_study") {
        let outcome = experiments::case_study(scale);
        emit(&outcome.report, &out_dir);
        println!("Top post-processed patterns:");
        for line in outcome.ranked_patterns.iter().take(10) {
            println!("  {line}");
        }
        println!();
        ran_any = true;
    }

    if !ran_any {
        eprintln!("no known experiment in {targets:?}");
        print_usage();
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn emit(report: &rgs_bench::ExperimentReport, out_dir: &std::path::Path) {
    println!("{}", report.to_markdown());
    if let Err(err) = report.write_to_dir(out_dir) {
        eprintln!(
            "warning: could not write report files for {}: {err}",
            report.id
        );
    }
}

fn print_usage() {
    println!(
        "usage: experiments [--scale dev|paper] [--out DIR] \
         [table1|fig2|fig3|fig4|fig5|fig6|baselines|case-study|all]"
    );
}
