//! Uniform miner runner: runs any of the miners under comparison on a
//! database and records runtime and output size.

use std::time::Instant;

use baselines::prefixspan::SequentialConfig;
use rgs_core::{Miner, Mode, PreparedDb};
use seqdb::SequenceDatabase;

/// The miners the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinerKind {
    /// GSgrow — all frequent repetitive gapped subsequences (this paper).
    GsGrow,
    /// CloGSgrow — closed frequent repetitive gapped subsequences (this
    /// paper).
    CloGsGrow,
    /// PrefixSpan — all frequent sequential patterns (sequence-count
    /// support).
    PrefixSpan,
    /// BIDE-style closed sequential pattern mining.
    Bide,
    /// CloSpan-lite — closed sequential patterns by post-filtering.
    CloSpanLite,
}

impl MinerKind {
    /// Human-readable label used in reports (matches the figure legends:
    /// "All" and "Closed" for the paper's two miners).
    pub fn label(self) -> &'static str {
        match self {
            MinerKind::GsGrow => "All (GSgrow)",
            MinerKind::CloGsGrow => "Closed (CloGSgrow)",
            MinerKind::PrefixSpan => "PrefixSpan",
            MinerKind::Bide => "BIDE-style",
            MinerKind::CloSpanLite => "CloSpan-lite",
        }
    }
}

/// The record of one miner run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Which miner ran.
    pub miner: MinerKind,
    /// The support threshold used.
    pub min_sup: u64,
    /// Wall-clock runtime in seconds.
    pub runtime_seconds: f64,
    /// Number of patterns reported.
    pub num_patterns: usize,
    /// `true` when the run hit the safety cap on emitted patterns — the
    /// harness's analogue of the paper's "cut-off" points where GSgrow is
    /// stopped after hours.
    pub truncated: bool,
}

/// Safety limits applied to every run so a single experiment cannot take
/// hours (mirrors the paper's manual cut-offs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Cap on the number of emitted patterns.
    pub max_patterns: usize,
    /// Cap on pattern length (`None` = unbounded, the paper's setting).
    pub max_pattern_length: Option<usize>,
    /// Worker threads for the repetitive miners (1 = sequential; output is
    /// bit-identical either way). The sequential-pattern baselines are
    /// single-threaded regardless.
    pub threads: usize,
}

impl Default for RunLimits {
    fn default() -> Self {
        Self {
            max_patterns: 2_000_000,
            max_pattern_length: None,
            threads: 1,
        }
    }
}

impl RunLimits {
    /// A tighter cap used by the quick (dev-scale) experiments.
    pub fn dev() -> Self {
        Self {
            max_patterns: 200_000,
            ..Self::default()
        }
    }

    /// The same limits with `threads` worker threads for the repetitive
    /// miners.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Runs `miner` on `db` at threshold `min_sup` under `limits` and records
/// runtime and output size. Prepares the database as part of the timed run;
/// experiments sweeping several thresholds over one dataset should prepare
/// once and use [`run_miner_on`].
pub fn run_miner(
    db: &SequenceDatabase,
    miner: MinerKind,
    min_sup: u64,
    limits: RunLimits,
) -> RunRecord {
    let start = Instant::now();
    let (num_patterns, truncated) = match miner {
        MinerKind::GsGrow | MinerKind::CloGsGrow => {
            let outcome = repetitive_miner(Miner::new(db), miner, min_sup, limits).run();
            (outcome.len(), outcome.truncated)
        }
        MinerKind::PrefixSpan => {
            let config = sequential_config(min_sup, limits);
            let patterns = baselines::mine_sequential(db, &config);
            let truncated = patterns.len() >= limits.max_patterns;
            (patterns.len(), truncated)
        }
        MinerKind::Bide => {
            let config = sequential_config(min_sup, limits);
            let patterns = baselines::mine_closed_sequential(db, &config);
            let truncated = patterns.len() >= limits.max_patterns;
            (patterns.len(), truncated)
        }
        MinerKind::CloSpanLite => {
            let config = sequential_config(min_sup, limits);
            let patterns = baselines::mine_closed_sequential_by_filter(db, &config);
            let truncated = patterns.len() >= limits.max_patterns;
            (patterns.len(), truncated)
        }
    };
    RunRecord {
        miner,
        min_sup,
        runtime_seconds: start.elapsed().as_secs_f64(),
        num_patterns,
        truncated,
    }
}

/// [`run_miner`] against a caller-prepared snapshot: the per-query path for
/// threshold sweeps and repeated measurements over one dataset. The
/// repetitive miners (GSgrow/CloGSgrow) borrow the snapshot and skip all
/// per-run preparation; the sequential-pattern baselines run on the
/// snapshotted database.
pub fn run_miner_on(
    prepared: &PreparedDb,
    miner: MinerKind,
    min_sup: u64,
    limits: RunLimits,
) -> RunRecord {
    match miner {
        MinerKind::GsGrow | MinerKind::CloGsGrow => {
            let start = Instant::now();
            let outcome = repetitive_miner(prepared.miner(), miner, min_sup, limits).run();
            RunRecord {
                miner,
                min_sup,
                runtime_seconds: start.elapsed().as_secs_f64(),
                num_patterns: outcome.len(),
                truncated: outcome.truncated,
            }
        }
        _ => run_miner(prepared.database(), miner, min_sup, limits),
    }
}

/// Applies the shared miner options (mode, threshold, caps, threads) for
/// the two repetitive miners.
fn repetitive_miner<'a>(
    engine: Miner<'a>,
    miner: MinerKind,
    min_sup: u64,
    limits: RunLimits,
) -> Miner<'a> {
    let mode = if miner == MinerKind::GsGrow {
        Mode::All
    } else {
        Mode::Closed
    };
    let mut engine = engine
        .min_sup(min_sup)
        .mode(mode)
        .max_patterns(limits.max_patterns)
        .threads(limits.threads);
    if let Some(len) = limits.max_pattern_length {
        engine = engine.max_pattern_length(len);
    }
    engine
}

fn sequential_config(min_sup: u64, limits: RunLimits) -> SequentialConfig {
    let mut config = SequentialConfig::new(min_sup).with_max_patterns(limits.max_patterns);
    if let Some(len) = limits.max_pattern_length {
        config = config.with_max_pattern_length(len);
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_db() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    #[test]
    fn all_miners_run_on_the_toy_database() {
        let db = toy_db();
        for miner in [
            MinerKind::GsGrow,
            MinerKind::CloGsGrow,
            MinerKind::PrefixSpan,
            MinerKind::Bide,
            MinerKind::CloSpanLite,
        ] {
            let record = run_miner(&db, miner, 2, RunLimits::default());
            assert!(record.num_patterns > 0, "{miner:?} found nothing");
            assert!(!record.truncated);
            assert!(record.runtime_seconds >= 0.0);
            assert_eq!(record.min_sup, 2);
        }
    }

    #[test]
    fn closed_miners_report_no_more_patterns_than_their_all_counterparts() {
        let db = toy_db();
        let all = run_miner(&db, MinerKind::GsGrow, 2, RunLimits::default());
        let closed = run_miner(&db, MinerKind::CloGsGrow, 2, RunLimits::default());
        assert!(closed.num_patterns <= all.num_patterns);
        let all_seq = run_miner(&db, MinerKind::PrefixSpan, 2, RunLimits::default());
        let closed_seq = run_miner(&db, MinerKind::Bide, 2, RunLimits::default());
        assert!(closed_seq.num_patterns <= all_seq.num_patterns);
    }

    #[test]
    fn pattern_cap_marks_runs_as_truncated() {
        let db = toy_db();
        let limits = RunLimits {
            max_patterns: 3,
            ..RunLimits::default()
        };
        let record = run_miner(&db, MinerKind::GsGrow, 1, limits);
        assert!(record.truncated);
        assert_eq!(record.num_patterns, 3);
    }

    #[test]
    fn prepared_runs_match_fresh_runs_for_every_miner() {
        let db = toy_db();
        let prepared = PreparedDb::new(&db);
        for miner in [
            MinerKind::GsGrow,
            MinerKind::CloGsGrow,
            MinerKind::PrefixSpan,
            MinerKind::Bide,
            MinerKind::CloSpanLite,
        ] {
            let fresh = run_miner(&db, miner, 2, RunLimits::default());
            let reused = run_miner_on(&prepared, miner, 2, RunLimits::default());
            assert_eq!(fresh.num_patterns, reused.num_patterns, "{miner:?}");
            assert_eq!(fresh.truncated, reused.truncated, "{miner:?}");
        }
    }

    #[test]
    fn threaded_runs_report_identical_counts() {
        let db = toy_db();
        let prepared = PreparedDb::new(&db);
        for miner in [MinerKind::GsGrow, MinerKind::CloGsGrow] {
            let sequential = run_miner_on(&prepared, miner, 2, RunLimits::default());
            let parallel = run_miner_on(&prepared, miner, 2, RunLimits::default().with_threads(4));
            assert_eq!(sequential.num_patterns, parallel.num_patterns, "{miner:?}");
        }
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(MinerKind::GsGrow.label(), "All (GSgrow)");
        assert_eq!(MinerKind::CloGsGrow.label(), "Closed (CloGSgrow)");
    }
}
