//! One function per experiment of the paper's evaluation (§IV), each
//! returning an [`ExperimentReport`].

use rgs_core::{postprocess, Miner, Mode, PostProcessConfig, PreparedDb};
use seqdb::SequenceDatabase;
use synthgen::JbossConfig;

use crate::datasets;
use crate::datasets::Scale;
use crate::report::ExperimentReport;
use crate::runner::{run_miner, run_miner_on, MinerKind, RunLimits, RunRecord};

fn limits_for(scale: Scale) -> RunLimits {
    match scale {
        Scale::Dev => RunLimits::dev(),
        Scale::Paper => RunLimits::default(),
    }
}

/// EXP-T1 — the Table I / Example 1.1 semantics comparison: the support of
/// `AB` and `CD` under every related-work support definition.
pub fn table1() -> ExperimentReport {
    let db = datasets::table1_dataset();
    let ab = db.pattern_from_str("AB").expect("AB");
    let cd = db.pattern_from_str("CD").expect("CD");
    let s1 = db.sequence(0).expect("S1");

    let mut report = ExperimentReport::new(
        "table1",
        "Support of AB and CD under the semantics of Table I (Example 1.1)",
        "S1 = AABCDABB, S2 = ABCD",
        "sequential: AB=2, CD=2; episodes w=4 (S1): AB=4; minimal windows (S1): AB=2; \
         gap 0..3 (S1): AB=4; interaction patterns: AB=9; iterative patterns: AB=3; \
         repetitive support (this paper): AB=4, CD=2",
    );

    let mut note = |name: &str, ab_value: u64, cd_value: u64| {
        report.push_note(format!(
            "{name}: sup(AB) = {ab_value}, sup(CD) = {cd_value}"
        ));
    };
    note(
        "sequential pattern mining (sequence count)",
        baselines::semantics::sequence_count_support(&db, &ab),
        baselines::semantics::sequence_count_support(&db, &cd),
    );
    note(
        "episode mining, width-4 windows in S1",
        baselines::semantics::episode_window_count(s1, &ab, 4),
        baselines::semantics::episode_window_count(s1, &cd, 4),
    );
    note(
        "episode mining, minimal windows in S1",
        baselines::semantics::minimal_window_count(s1, &ab),
        baselines::semantics::minimal_window_count(s1, &cd),
    );
    note(
        "periodic patterns with gap requirement 0..=3 in S1",
        baselines::semantics::gap_constrained_count(s1, &ab, 0, 3),
        baselines::semantics::gap_constrained_count(s1, &cd, 0, 3),
    );
    note(
        "interaction patterns (whole database)",
        baselines::semantics::interaction_pattern_support(&db, &ab),
        baselines::semantics::interaction_pattern_support(&db, &cd),
    );
    note(
        "iterative patterns (whole database)",
        baselines::semantics::iterative_pattern_support(&db, &ab),
        baselines::semantics::iterative_pattern_support(&db, &cd),
    );
    note(
        "repetitive support (this paper)",
        rgs_core::repetitive_support(&db, &ab),
        rgs_core::repetitive_support(&db, &cd),
    );
    report
}

/// Runs the "All" and "Closed" miners over a sweep of support thresholds on
/// one dataset (the template of Figures 2, 3 and 4).
#[allow(clippy::too_many_arguments)] // experiment descriptor, not an API
fn minsup_sweep(
    id: &str,
    title: &str,
    dataset_name: &str,
    db: &SequenceDatabase,
    thresholds: &[u64],
    all_cutoff: Option<u64>,
    expectation: &str,
    limits: RunLimits,
) -> ExperimentReport {
    let stats = db.stats();
    let mut report = ExperimentReport::new(
        id,
        title,
        &format!("{dataset_name}: {}", stats.summary()),
        expectation,
    );
    // One prepared snapshot serves the whole threshold sweep: the index and
    // occurrence counts are query-independent.
    let prepared = PreparedDb::new(db);
    for &min_sup in thresholds {
        let mut runs: Vec<RunRecord> = Vec::new();
        // The paper only runs GSgrow above the "cut-off" threshold; below it
        // the number of frequent patterns is too large.
        let run_all = all_cutoff.is_none_or(|cutoff| min_sup >= cutoff);
        if run_all {
            runs.push(run_miner_on(&prepared, MinerKind::GsGrow, min_sup, limits));
        }
        runs.push(run_miner_on(
            &prepared,
            MinerKind::CloGsGrow,
            min_sup,
            limits,
        ));
        report.push_row(format!("min_sup={min_sup}"), runs);
    }
    summarize_sweep(&mut report);
    report
}

/// Adds shape notes shared by all min_sup sweeps: the closed result is never
/// larger than the all result, and pattern counts grow as the threshold
/// drops.
fn summarize_sweep(report: &mut ExperimentReport) {
    let mut closed_never_larger = true;
    let mut ratio_max = 0.0f64;
    for row in &report.rows {
        let all = row
            .runs
            .iter()
            .find(|r| r.miner == MinerKind::GsGrow)
            .map(|r| r.num_patterns);
        let closed = row
            .runs
            .iter()
            .find(|r| r.miner == MinerKind::CloGsGrow)
            .map(|r| r.num_patterns);
        if let (Some(all), Some(closed)) = (all, closed) {
            if closed > all {
                closed_never_larger = false;
            }
            if closed > 0 {
                ratio_max = ratio_max.max(all as f64 / closed as f64);
            }
        }
    }
    report.push_note(format!(
        "closed set never larger than all set: {closed_never_larger}; max all/closed ratio observed: {ratio_max:.1}x"
    ));
}

/// EXP-F2 — Figure 2: varying `min_sup` on the QUEST dataset D5C20N10S20.
pub fn fig2(scale: Scale) -> ExperimentReport {
    let (name, db) = datasets::fig2_dataset(scale);
    let thresholds = datasets::fig2_thresholds(scale);
    let all_cutoff = Some(thresholds[thresholds.len().saturating_sub(2)]);
    minsup_sweep(
        "fig2",
        "Varying support threshold min_sup (QUEST synthetic data)",
        &name,
        &db,
        &thresholds,
        all_cutoff,
        "Both runtimes and pattern counts grow as min_sup drops; the closed set is \
         orders of magnitude smaller than the all set at low thresholds and CloGSgrow \
         stays tractable where GSgrow is cut off",
        limits_for(scale),
    )
}

/// EXP-F3 — Figure 3: varying `min_sup` on the Gazelle-like clickstream.
pub fn fig3(scale: Scale) -> ExperimentReport {
    let (name, db) = datasets::fig3_dataset(scale);
    let thresholds = datasets::fig3_thresholds(scale);
    let all_cutoff = Some(thresholds[thresholds.len().saturating_sub(2)]);
    minsup_sweep(
        "fig3",
        "Varying support threshold min_sup (Gazelle-like clickstream)",
        &name,
        &db,
        &thresholds,
        all_cutoff,
        "A few very long sessions dominate; CloGSgrow completes even at low support \
         while GSgrow is only run at the higher thresholds",
        limits_for(scale),
    )
}

/// EXP-F4 — Figure 4: varying `min_sup` on the TCAS-like traces; the closed
/// miner is exercised down to `min_sup = 1`.
pub fn fig4(scale: Scale) -> ExperimentReport {
    let (name, db) = datasets::fig4_dataset(scale);
    let thresholds = datasets::fig4_thresholds(scale);
    let all_cutoff = Some(thresholds[0]);
    minsup_sweep(
        "fig4",
        "Varying support threshold min_sup (TCAS-like program traces)",
        &name,
        &db,
        &thresholds,
        all_cutoff,
        "Loop-heavy traces make the all-pattern set explode even at the highest \
         threshold (GSgrow is cut off), while CloGSgrow finishes at min_sup = 1",
        limits_for(scale),
    )
}

/// Runs the two miners over a list of datasets at a fixed threshold (the
/// template of Figures 5 and 6).
fn dataset_sweep(
    id: &str,
    title: &str,
    datasets: &[(String, SequenceDatabase)],
    min_sup: u64,
    expectation: &str,
    limits: RunLimits,
    all_limit: Option<usize>,
) -> ExperimentReport {
    let mut report =
        ExperimentReport::new(id, title, "QUEST synthetic data (see rows)", expectation);
    for (idx, (name, db)) in datasets.iter().enumerate() {
        let stats = db.stats();
        let prepared = PreparedDb::new(db);
        let mut runs = Vec::new();
        // The paper stops running GSgrow on the larger settings (it does not
        // terminate in reasonable time); `all_limit` is the index of the
        // last setting on which the all-miner is run.
        if all_limit.is_none_or(|limit| idx <= limit) {
            runs.push(run_miner_on(&prepared, MinerKind::GsGrow, min_sup, limits));
        }
        runs.push(run_miner_on(
            &prepared,
            MinerKind::CloGsGrow,
            min_sup,
            limits,
        ));
        report.push_row(
            format!(
                "{name} ({} seqs, avg len {:.0})",
                stats.num_sequences, stats.avg_length
            ),
            runs,
        );
    }
    summarize_sweep(&mut report);
    report
}

/// EXP-F5 — Figure 5: varying the number of sequences (D = 5..25K at paper
/// scale), C = S = 50, N = 10K, min_sup = 20.
pub fn fig5(scale: Scale) -> ExperimentReport {
    dataset_sweep(
        "fig5",
        "Varying the number of sequences |SeqDB|",
        &datasets::fig5_datasets(scale),
        datasets::fig5_fig6_threshold(scale),
        "Runtime grows with the number of sequences; GSgrow stops terminating in \
         reasonable time around the middle of the sweep while CloGSgrow handles the \
         largest setting; the closed set stays far smaller than the all set",
        limits_for(scale),
        Some(2),
    )
}

/// EXP-F6 — Figure 6: varying the average sequence length (C = S = 20..100),
/// D = 10K, N = 10K, min_sup = 20.
pub fn fig6(scale: Scale) -> ExperimentReport {
    dataset_sweep(
        "fig6",
        "Varying the average sequence length",
        &datasets::fig6_datasets(scale),
        datasets::fig5_fig6_threshold(scale),
        "Both miners slow down as sequences get longer (more frequent patterns at the \
         same threshold); GSgrow is cut off from average length 80 onwards while \
         CloGSgrow completes on the longest setting",
        limits_for(scale),
        Some(2),
    )
}

/// EXP-CMP — the Experiment-1 baseline comparison: CloGSgrow vs the
/// sequential-pattern miners (PrefixSpan, BIDE-style, CloSpan-lite) on the
/// Figure 2 dataset. The sequential miners solve an easier problem
/// (repetitions within a sequence are ignored), which is the point the
/// paper makes when comparing runtimes.
pub fn baselines_comparison(scale: Scale) -> ExperimentReport {
    let (name, db) = datasets::fig2_dataset(scale);
    let thresholds = datasets::fig2_thresholds(scale);
    let stats = db.stats();
    let limits = limits_for(scale);
    let mut report = ExperimentReport::new(
        "baselines",
        "CloGSgrow vs sequential-pattern baselines",
        &format!("{name}: {}", stats.summary()),
        "CloGSgrow is in the same runtime ballpark as closed sequential miners \
         (slightly slower than BIDE, faster than or comparable to CloSpan/PrefixSpan \
         on the synthetic dataset) while solving a strictly harder problem",
    );
    // Use the middle of the threshold sweep: low enough to be interesting,
    // high enough that every miner terminates quickly.
    let min_sup = thresholds[thresholds.len() / 2];
    // Sequence-count supports are bounded by the number of sequences, so the
    // sequential miners get a threshold scaled to sequence count.
    let seq_min_sup = (stats.num_sequences.div_ceil(20) as u64).max(2);
    let prepared = PreparedDb::new(&db);
    let runs = vec![
        run_miner_on(&prepared, MinerKind::CloGsGrow, min_sup, limits),
        run_miner_on(&prepared, MinerKind::GsGrow, min_sup, limits),
    ];
    report.push_row(format!("repetitive miners, min_sup={min_sup}"), runs);
    let mut seq_runs = Vec::new();
    for miner in [
        MinerKind::PrefixSpan,
        MinerKind::Bide,
        MinerKind::CloSpanLite,
    ] {
        seq_runs.push(run_miner(&db, miner, seq_min_sup, limits));
    }
    report.push_row(
        format!("sequential miners, min_sup={seq_min_sup}"),
        seq_runs,
    );
    report.push_note(
        "the sequential miners use sequence-count support, so their threshold is \
         expressed as a fraction of |SeqDB|"
            .to_owned(),
    );
    report
}

/// The outcome of the case study, in addition to the report: the patterns
/// that survive post-processing, rendered with event labels.
#[derive(Debug, Clone)]
pub struct CaseStudyOutcome {
    /// The report (counts, runtimes, notes).
    pub report: ExperimentReport,
    /// The surviving patterns after density + maximality + ranking, rendered
    /// as ` -> `-joined event labels.
    pub ranked_patterns: Vec<String>,
}

/// EXP-CS — the §IV-B case study on JBoss-transaction-like traces:
/// mine closed patterns at `min_sup = 18`, post-process (density > 40 %,
/// maximality, ranking by length) and check the headline findings.
pub fn case_study(scale: Scale) -> CaseStudyOutcome {
    let (name, db) = datasets::case_study_dataset(scale);
    let min_sup = datasets::case_study_threshold();
    let stats = db.stats();
    let mut report = ExperimentReport::new(
        "case_study",
        "JBoss transaction component case study (closed repetitive patterns)",
        &format!("{name}: {}", stats.summary()),
        "CloGSgrow completes at min_sup = 18 while GSgrow does not; after density, \
         maximality and ranking the longest pattern spans all six behavioural blocks \
         (connection set-up through disposal) and the most frequent 2-event pattern \
         is lock -> unlock",
    );

    let start = std::time::Instant::now();
    let closed = Miner::new(&db)
        .min_sup(min_sup)
        .mode(Mode::Closed)
        .max_patterns(limits_for(scale).max_patterns)
        .run();
    let elapsed = start.elapsed().as_secs_f64();
    report.push_row(
        format!("min_sup={min_sup}"),
        vec![RunRecord {
            miner: MinerKind::CloGsGrow,
            min_sup,
            runtime_seconds: elapsed,
            num_patterns: closed.len(),
            truncated: closed.truncated,
        }],
    );

    let processed = postprocess(&closed.patterns, &PostProcessConfig::default());
    report.push_note(format!(
        "{} closed patterns mined; {} remain after density > 40% + maximality",
        closed.len(),
        processed.len()
    ));

    if let Some(longest) = processed.first() {
        report.push_note(format!(
            "longest reported pattern has length {} with support {}",
            longest.pattern.len(),
            longest.support
        ));
        // Check whether the longest pattern spans all six semantic blocks.
        let rendered = longest.pattern.render_with(db.catalog(), " -> ");
        let block_witnesses = [
            "TransManLoc.locate",
            "TxManager.begin",
            "TransImpl.assocCurThd",
            "TransImpl.enlistResource",
            "TransImpl.commit",
            "TxManager.releaseTransImpl",
        ];
        let spans_all = block_witnesses.iter().all(|w| rendered.contains(w));
        report.push_note(format!(
            "longest pattern spans all six behavioural blocks (connection set-up .. disposal): {spans_all}"
        ));
    }

    // The lock -> unlock micro-behaviour.
    let lock_unlock: Vec<_> = ["TransImpl.lock", "TransImpl.unlock"]
        .iter()
        .filter_map(|l| db.catalog().id(l))
        .collect();
    if lock_unlock.len() == 2 {
        let sup = rgs_core::repetitive_support(&db, &lock_unlock);
        report.push_note(format!(
            "repetitive support of lock -> unlock: {sup} (paper: the most frequent 2-event behaviour)"
        ));
    }

    let ranked_patterns = processed
        .iter()
        .map(|mp| {
            format!(
                "len={} sup={} {}",
                mp.pattern.len(),
                mp.support,
                mp.pattern.render_with(db.catalog(), " -> ")
            )
        })
        .collect();

    CaseStudyOutcome {
        report,
        ranked_patterns,
    }
}

/// Ground truth helper used by integration tests: the end-to-end behaviour
/// embedded by the JBoss-like generator, as event ids of `db`.
pub fn jboss_end_to_end_pattern(db: &SequenceDatabase) -> Vec<seqdb::EventId> {
    JbossConfig::end_to_end_behaviour()
        .iter()
        .filter_map(|l| db.catalog().id(l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_every_number_of_example_1_1() {
        let report = table1();
        let joined = report.notes.join("\n");
        assert!(
            joined.contains("sequential pattern mining (sequence count): sup(AB) = 2, sup(CD) = 2")
        );
        assert!(joined.contains("episode mining, width-4 windows in S1: sup(AB) = 4"));
        assert!(joined.contains("episode mining, minimal windows in S1: sup(AB) = 2"));
        assert!(joined.contains("periodic patterns with gap requirement 0..=3 in S1: sup(AB) = 4"));
        assert!(joined.contains("interaction patterns (whole database): sup(AB) = 9"));
        assert!(joined.contains("iterative patterns (whole database): sup(AB) = 3"));
        assert!(joined.contains("repetitive support (this paper): sup(AB) = 4, sup(CD) = 2"));
    }

    #[test]
    fn case_study_recovers_the_headline_findings() {
        let outcome = case_study(Scale::Dev);
        let notes = outcome.report.notes.join("\n");
        assert!(notes
            .contains("spans all six behavioural blocks (connection set-up .. disposal): true"));
        assert!(!outcome.ranked_patterns.is_empty());
        // The longest pattern should be long (the paper's is 66 events).
        let first = &outcome.ranked_patterns[0];
        let len: usize = first
            .split_whitespace()
            .next()
            .and_then(|s| s.strip_prefix("len="))
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        assert!(len >= 40, "longest pattern too short: {first}");
    }
}
