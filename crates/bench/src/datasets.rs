//! Dataset presets for every experiment.
//!
//! Each preset can be produced at the paper's full size (`Scale::Paper`) or
//! scaled down (`Scale::Dev`, the default), so the whole harness completes
//! in minutes on a laptop while preserving the qualitative shape of the
//! figures.

use seqdb::SequenceDatabase;
use synthgen::{GazelleConfig, JbossConfig, QuestConfig, TcasConfig};

/// How large the generated datasets should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down presets for quick runs (default).
    Dev,
    /// The paper's full-size parameters.
    Paper,
}

impl Scale {
    /// Parses `"dev"` / `"paper"` / `"full"`.
    pub fn parse(value: &str) -> Option<Self> {
        match value.to_ascii_lowercase().as_str() {
            "dev" | "small" => Some(Scale::Dev),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// The QUEST dataset of Figure 2 (`D5C20N10S20`).
pub fn fig2_dataset(scale: Scale) -> (String, SequenceDatabase) {
    let config = QuestConfig::paper(5, 20, 10, 20);
    let config = match scale {
        Scale::Paper => config,
        Scale::Dev => config.scaled_down(25),
    };
    (config.name(), config.generate())
}

/// The support thresholds swept in Figure 2 (scaled variant uses thresholds
/// appropriate for the smaller database; the paper sweeps 3..10 on the full
/// data with a cut-off below 7 for mining all patterns).
pub fn fig2_thresholds(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Paper => vec![10, 9, 8, 7, 3],
        Scale::Dev => vec![40, 30, 20, 15, 10],
    }
}

/// The Gazelle-like clickstream dataset of Figure 3.
pub fn fig3_dataset(scale: Scale) -> (String, SequenceDatabase) {
    let config = match scale {
        Scale::Paper => GazelleConfig::default(),
        Scale::Dev => GazelleConfig::default().scaled_down(40),
    };
    ("Gazelle-like".to_owned(), config.generate())
}

/// The support thresholds swept in Figure 3 (paper: 66 down to 8).
pub fn fig3_thresholds(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Paper => vec![66, 65, 64, 63, 8],
        Scale::Dev => vec![60, 40, 30, 20, 12],
    }
}

/// The TCAS-like trace dataset of Figure 4.
pub fn fig4_dataset(scale: Scale) -> (String, SequenceDatabase) {
    let config = match scale {
        Scale::Paper => TcasConfig::default(),
        Scale::Dev => TcasConfig::default().scaled_down(16),
    };
    ("TCAS-like".to_owned(), config.generate())
}

/// The support thresholds swept in Figure 4 (paper: 889 down to 1). The
/// dev-scale sweep stops at 4: on the loop-heavy dev dataset the closed set
/// below that is large enough that a single run dominates the whole harness;
/// the paper-scale sweep keeps the "down to min_sup = 1" headline setting.
pub fn fig4_thresholds(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Paper => vec![889, 888, 887, 886, 1],
        Scale::Dev => vec![60, 40, 20, 10, 4],
    }
}

/// The datasets of Figure 5: `D` (number of sequences, in thousands at paper
/// scale) varies, `C = S = 50`, `N = 10`(K), `min_sup = 20`.
pub fn fig5_datasets(scale: Scale) -> Vec<(String, SequenceDatabase)> {
    FIG5_D_VALUES
        .iter()
        .map(|&d| {
            let config = fig5_config(scale, d);
            (config.name(), config.generate())
        })
        .collect()
}

/// The `D` sweep of Figure 5.
const FIG5_D_VALUES: [usize; 5] = [5, 10, 15, 20, 25];

/// One Figure 5 configuration (shared by the sweep and [`fig5_largest`], so
/// the two can never drift apart).
fn fig5_config(scale: Scale, d: usize) -> QuestConfig {
    let config = QuestConfig::paper(d, 50, 10, 50);
    match scale {
        Scale::Paper => config,
        Scale::Dev => config.scaled_down(50),
    }
}

/// The heaviest Figure 5 configuration only (`D = 25`), generated without
/// building the four smaller databases of the sweep — for benchmarks that
/// measure a single workload.
pub fn fig5_largest(scale: Scale) -> (String, SequenceDatabase) {
    let config = fig5_config(scale, FIG5_D_VALUES[FIG5_D_VALUES.len() - 1]);
    (config.name(), config.generate())
}

/// The fixed support threshold of Figures 5 and 6.
pub fn fig5_fig6_threshold(scale: Scale) -> u64 {
    match scale {
        Scale::Paper => 20,
        Scale::Dev => 20,
    }
}

/// The datasets of Figure 6: the average sequence length (`C = S`) varies
/// over {20, 40, 60, 80, 100}, `D = 10`(K), `N = 10`(K), `min_sup = 20`.
pub fn fig6_datasets(scale: Scale) -> Vec<(String, SequenceDatabase)> {
    FIG6_LENGTHS
        .iter()
        .map(|&len| {
            let config = fig6_config(scale, len);
            (config.name(), config.generate())
        })
        .collect()
}

/// The `C = S` sweep of Figure 6.
const FIG6_LENGTHS: [usize; 5] = [20, 40, 60, 80, 100];

/// One Figure 6 configuration (shared by the sweep and [`fig6_largest`]).
fn fig6_config(scale: Scale, len: usize) -> QuestConfig {
    let config = QuestConfig::paper(10, len, 10, len);
    match scale {
        Scale::Paper => config,
        Scale::Dev => config.scaled_down(100),
    }
}

/// The heaviest Figure 6 configuration only (`C = S = 100`), generated
/// without building the four shorter-sequence databases of the sweep.
pub fn fig6_largest(scale: Scale) -> (String, SequenceDatabase) {
    let config = fig6_config(scale, FIG6_LENGTHS[FIG6_LENGTHS.len() - 1]);
    (config.name(), config.generate())
}

/// Long-sequence QUEST datasets for the growth-kernel benchmark: the
/// Figure 6 shape stretched past the paper's `C = S` sweep to average
/// lengths of roughly 200 and 400 events, where posting rows are long and
/// per-call probes (slot re-derivation + whole-row binary search) hurt the
/// most — exactly the regime the batched cursor kernels target.
pub fn long_seq_datasets(scale: Scale) -> Vec<(String, SequenceDatabase)> {
    let mut datasets: Vec<(String, SequenceDatabase)> = LONG_SEQ_LENGTHS
        .iter()
        .map(|&len| {
            let config = fig6_config(scale, len);
            (config.name(), config.generate())
        })
        .collect();
    datasets.push(dense_long_seq_dataset(scale));
    datasets
}

/// The average-length sweep of the long-sequence growth workloads.
const LONG_SEQ_LENGTHS: [usize; 2] = [200, 400];

/// The dense long-sequence workload: avg ~400-event sequences over a
/// deliberately tiny, heavily skewed alphabet — one dominant event (~90%
/// of all positions, a heartbeat/poll event in log terms) plus three rare
/// ones, the extreme end of the power-law shape of real logs and protein
/// traces. The skew is what makes this the block-parallel regime: growing
/// the dominant event by itself pairs a dense instance run (hundreds per
/// sequence) with an equally dense posting row in perfect alternation, so
/// every lane of a 64-wide block passes its bound and the kernels' single
/// whole-block compare plus bulk emission replaces 64 scalar probe steps.
/// (Uniform alphabets interleave instances and extension positions ~1:1
/// across *different* events, which breaks the dominated prefix every few
/// lanes; the sparse Fig. 6 shape averages only ~2 positions per row,
/// which bounds any per-row win.) Both scales use the same CI-sized
/// corpus: the shape, not the size, is the point — and it is generated
/// directly from a seeded LCG so the skew is exact and reproducible.
fn dense_long_seq_dataset(_scale: Scale) -> (String, SequenceDatabase) {
    let mut state = 0x5EED_CAFE_u64;
    let mut next = move |modulus: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % modulus
    };
    let rows: Vec<String> = (0..100)
        .map(|_| {
            let len = 300 + next(200) as usize;
            (0..len)
                .map(|_| {
                    if next(10) < 9 {
                        'A'
                    } else {
                        char::from(b'B' + u8::try_from(next(3)).unwrap_or(0))
                    }
                })
                .collect()
        })
        .collect();
    let refs: Vec<&str> = rows.iter().map(String::as_str).collect();
    (
        "SKEW90A4C400-dense".to_owned(),
        SequenceDatabase::from_str_rows(&refs),
    )
}

/// The JBoss-like case-study dataset (§IV-B); it is small in the paper (28
/// traces), so both scales generate the same data.
pub fn case_study_dataset(_scale: Scale) -> (String, SequenceDatabase) {
    (
        "JBoss-transaction-like".to_owned(),
        JbossConfig::default().generate(),
    )
}

/// The case-study support threshold (`min_sup = 18` in the paper).
pub fn case_study_threshold() -> u64 {
    18
}

/// Example 1.1's two-sequence database, used by the Table I experiment.
pub fn table1_dataset() -> SequenceDatabase {
    SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dev_scale_datasets_are_small_enough_for_ci() {
        let (_, fig2) = fig2_dataset(Scale::Dev);
        assert!(fig2.num_sequences() <= 1_000);
        let (_, fig3) = fig3_dataset(Scale::Dev);
        assert!(fig3.num_sequences() <= 2_000);
        let (_, fig4) = fig4_dataset(Scale::Dev);
        assert!(fig4.num_sequences() <= 200);
        assert_eq!(fig5_datasets(Scale::Dev).len(), 5);
        assert_eq!(fig6_datasets(Scale::Dev).len(), 5);
    }

    #[test]
    fn long_sequence_datasets_stretch_the_average_length() {
        let long = long_seq_datasets(Scale::Dev);
        assert_eq!(long.len(), 3);
        let avg = |db: &SequenceDatabase| db.total_length() as f64 / db.num_sequences() as f64;
        let (_, d200) = &long[0];
        let (_, d400) = &long[1];
        assert!(avg(d200) >= 150.0, "avg {}", avg(d200));
        assert!(avg(d400) >= 300.0, "avg {}", avg(d400));
        assert!(avg(d400) > avg(d200));
        // Dev scale stays CI-sized.
        assert!(d400.num_sequences() <= 200);
        // The dense workload trades alphabet size for posting-row length:
        // long sequences, a small skewed alphabet, CI-sized corpus.
        let (dense_name, dense) = &long[2];
        assert!(dense_name.ends_with("-dense"));
        assert!(avg(dense) >= 300.0, "avg {}", avg(dense));
        assert!(dense.num_events() <= 16);
        assert!(dense.num_sequences() <= 200);
        let rows = dense.num_sequences() * dense.num_events();
        assert!(
            dense.total_length() / rows >= 15,
            "avg posting row {} too short for the lane-parallel regime",
            dense.total_length() / rows
        );
    }

    #[test]
    fn paper_scale_matches_paper_parameters() {
        let (name, _) = {
            // Only check the name construction cheaply: generating the full
            // 5k x 20 dataset here would slow the test suite down.
            let config = synthgen::QuestConfig::paper(5, 20, 10, 20);
            (config.name(), ())
        };
        assert_eq!(name, "D5C20N10S20");
        assert_eq!(fig4_thresholds(Scale::Paper).last(), Some(&1));
        assert_eq!(case_study_threshold(), 18);
    }

    #[test]
    fn scale_parse_accepts_known_values() {
        assert_eq!(Scale::parse("dev"), Some(Scale::Dev));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("gigantic"), None);
    }

    #[test]
    fn threshold_sweeps_are_descending_towards_harder_settings() {
        for thresholds in [
            fig2_thresholds(Scale::Dev),
            fig3_thresholds(Scale::Dev),
            fig4_thresholds(Scale::Dev),
        ] {
            assert!(thresholds.windows(2).all(|w| w[0] >= w[1]));
            assert!(!thresholds.is_empty());
        }
    }

    #[test]
    fn table1_dataset_is_example_1_1() {
        let db = table1_dataset();
        assert_eq!(db.num_sequences(), 2);
        assert_eq!(db.sequence(0).unwrap().len(), 8);
        assert_eq!(db.sequence(1).unwrap().len(), 4);
    }
}
