//! Ablation bench for the gap-constrained mining extension: how runtime and
//! output size react as the gap/window constraints tighten on the QUEST
//! synthetic dataset.
//!
//! The paper's future-work section motivates gap constraints for long
//! sequences; this bench quantifies the practical effect the constraints
//! have on the search (tighter constraints → fewer admissible instances →
//! smaller frequent set → faster mining).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rgs_bench::datasets::{fig2_dataset, Scale};
use rgs_core::{GapConstraints, Miner, Mode};

fn bench_constrained(c: &mut Criterion) {
    let (_, db) = fig2_dataset(Scale::Dev);
    let mut group = c.benchmark_group("constrained_mining");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let cases: Vec<(&str, GapConstraints)> = vec![
        ("unbounded", GapConstraints::unbounded()),
        ("max_gap_8", GapConstraints::max_gap(8)),
        ("max_gap_2", GapConstraints::max_gap(2)),
        ("window_10", GapConstraints::max_window(10)),
        (
            "gap2_window10",
            GapConstraints::max_gap(2).with_max_window(10),
        ),
    ];
    for (label, constraints) in cases {
        group.bench_with_input(
            BenchmarkId::new("mine_all_constrained", label),
            &constraints,
            |b, &constraints| {
                b.iter(|| {
                    Miner::new(&db)
                        .min_sup(15)
                        .mode(Mode::All)
                        .constraints(constraints)
                        .max_patterns(200_000)
                        .run()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_constrained);
criterion_main!(benches);
