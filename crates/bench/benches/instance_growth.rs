//! Microbenchmark of the core primitives: the `next()` inverted-index query,
//! one `INSgrow` instance-growth step, and a full `supComp` support
//! computation (Algorithms 1 and 2).
//!
//! These are the building blocks whose `O(sup(P) · log L)` cost underlies
//! the complexity analysis of §III-D; the benchmark documents their absolute
//! cost on this machine.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rgs_core::{Pattern, SupportComputer};
use synthgen::QuestConfig;

fn bench_primitives(c: &mut Criterion) {
    let db = QuestConfig {
        num_sequences: 500,
        avg_sequence_length: 50,
        num_events: 100,
        avg_pattern_length: 8,
        num_patterns: 30,
        ..QuestConfig::default()
    }
    .generate();
    let sc = SupportComputer::new(&db);

    // Pick the three most frequent events to build a realistic pattern.
    let mut events: Vec<_> = db.catalog().ids().collect();
    events.sort_by_key(|&e| std::cmp::Reverse(db.event_occurrences(e)));
    let top: Vec<_> = events.iter().take(3).copied().collect();
    let pattern = Pattern::new(top.clone());

    let mut group = c.benchmark_group("instance_growth");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    group.bench_function("index_next_query", |b| {
        let index = sc.index();
        b.iter(|| {
            let mut total = 0u64;
            for seq in 0..db.num_sequences() {
                if let Some(pos) = index.next(seq, top[0], 5) {
                    total += u64::from(pos);
                }
            }
            total
        });
    });

    group.bench_function("initial_support_set", |b| {
        b.iter(|| sc.initial_support_set(top[0]));
    });

    group.bench_function("insgrow_one_step", |b| {
        let base = sc.initial_support_set(top[0]);
        b.iter(|| sc.instance_growth(&base, top[1]));
    });

    for len in [2usize, 3] {
        group.bench_with_input(
            BenchmarkId::new("supcomp_full_pattern", len),
            &len,
            |b, &len| {
                let p = Pattern::new(top.iter().take(len).copied().collect());
                b.iter(|| sc.support(&p));
            },
        );
    }

    group.bench_function("support_landmark_reconstruction", |b| {
        b.iter(|| sc.support_landmarks(&pattern));
    });

    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
