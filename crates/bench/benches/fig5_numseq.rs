//! Figure 5 — runtime of GSgrow and CloGSgrow while the number of sequences
//! grows (D = 5..25K at paper scale, dev-scaled here), C = S = 50, N = 10K,
//! min_sup = 20.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rgs_bench::datasets::{fig5_datasets, fig5_fig6_threshold, Scale};
use rgs_bench::runner::{run_miner, MinerKind, RunLimits};

fn bench_fig5(c: &mut Criterion) {
    let datasets = fig5_datasets(Scale::Dev);
    let min_sup = fig5_fig6_threshold(Scale::Dev);
    let limits = RunLimits::dev();
    let mut group = c.benchmark_group("fig5_numseq");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for (idx, (name, db)) in datasets.iter().enumerate() {
        group.bench_with_input(BenchmarkId::new("closed_clogsgrow", name), db, |b, db| {
            b.iter(|| run_miner(db, MinerKind::CloGsGrow, min_sup, limits));
        });
        // The all-pattern miner stops terminating in reasonable time on the
        // larger settings (the paper stops it at ~15K sequences); to keep
        // the bench suite short it is only benchmarked on the smallest one.
        if idx == 0 {
            group.bench_with_input(BenchmarkId::new("all_gsgrow", name), db, |b, db| {
                b.iter(|| run_miner(db, MinerKind::GsGrow, min_sup, limits));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
