//! Ablation — the effect of the landmark border checking strategy
//! (Theorem 5) on CloGSgrow's runtime.
//!
//! The paper attributes CloGSgrow's scalability at low support thresholds to
//! this pruning rule; the ablation runs the closed miner with and without it
//! on the Figure-2 dataset. The mined pattern set is identical in both modes
//! (verified by unit tests); only the amount of search differs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rgs_bench::datasets::{fig2_dataset, fig2_thresholds, Scale};
use rgs_core::{Miner, Mode};

fn bench_ablation(c: &mut Criterion) {
    let (_, db) = fig2_dataset(Scale::Dev);
    let thresholds = fig2_thresholds(Scale::Dev);
    let mid = thresholds[thresholds.len() / 2];
    let cap = 200_000;

    let mut group = c.benchmark_group("ablation_landmark_pruning");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_with_input(
        BenchmarkId::new("with_lb_pruning", mid),
        &mid,
        |b, &min_sup| {
            b.iter(|| {
                Miner::new(&db)
                    .min_sup(min_sup)
                    .mode(Mode::Closed)
                    .max_patterns(cap)
                    .run()
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("without_lb_pruning", mid),
        &mid,
        |b, &min_sup| {
            b.iter(|| {
                Miner::new(&db)
                    .min_sup(min_sup)
                    .mode(Mode::Closed)
                    .max_patterns(cap)
                    .landmark_pruning(false)
                    .run()
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
