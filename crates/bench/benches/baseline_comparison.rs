//! Experiment-1 baseline comparison — CloGSgrow vs the sequential-pattern
//! miners (PrefixSpan, BIDE-style, CloSpan-lite) on the Figure-2 dataset.
//!
//! The paper reports that its closed miner is slightly slower than BIDE but
//! comparable to / faster than CloSpan and PrefixSpan on the synthetic
//! dataset while solving a strictly harder problem (it additionally counts
//! repetitions within each sequence).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rgs_bench::datasets::{fig2_dataset, fig2_thresholds, Scale};
use rgs_bench::runner::{run_miner, MinerKind, RunLimits};

fn bench_baselines(c: &mut Criterion) {
    let (_, db) = fig2_dataset(Scale::Dev);
    let limits = RunLimits::dev();
    let thresholds = fig2_thresholds(Scale::Dev);
    let repetitive_min_sup = thresholds[thresholds.len() / 2];
    // Sequential miners use sequence-count support: threshold as a fraction
    // of the number of sequences.
    let sequential_min_sup = db.num_sequences().div_ceil(20) as u64;

    let mut group = c.benchmark_group("baseline_comparison");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function(BenchmarkId::new("CloGSgrow", repetitive_min_sup), |b| {
        b.iter(|| run_miner(&db, MinerKind::CloGsGrow, repetitive_min_sup, limits));
    });
    for (label, miner) in [
        ("PrefixSpan", MinerKind::PrefixSpan),
        ("BIDE-style", MinerKind::Bide),
        ("CloSpan-lite", MinerKind::CloSpanLite),
    ] {
        group.bench_function(BenchmarkId::new(label, sequential_min_sup), |b| {
            b.iter(|| run_miner(&db, miner, sequential_min_sup, limits));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
