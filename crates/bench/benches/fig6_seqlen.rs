//! Figure 6 — runtime of GSgrow and CloGSgrow while the average sequence
//! length grows (C = S = 20..100), D = 10K (dev-scaled), N = 10K,
//! min_sup = 20.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rgs_bench::datasets::{fig5_fig6_threshold, fig6_datasets, Scale};
use rgs_bench::runner::{run_miner, MinerKind, RunLimits};

fn bench_fig6(c: &mut Criterion) {
    let datasets = fig6_datasets(Scale::Dev);
    let min_sup = fig5_fig6_threshold(Scale::Dev);
    let limits = RunLimits::dev();
    let mut group = c.benchmark_group("fig6_seqlen");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for (idx, (name, db)) in datasets.iter().enumerate() {
        group.bench_with_input(BenchmarkId::new("closed_clogsgrow", name), db, |b, db| {
            b.iter(|| run_miner(db, MinerKind::CloGsGrow, min_sup, limits));
        });
        // GSgrow is cut off from average length 80 onwards in the paper; to
        // keep the bench suite short it is only benchmarked on the two
        // shortest settings.
        if idx <= 1 {
            group.bench_with_input(BenchmarkId::new("all_gsgrow", name), db, |b, db| {
                b.iter(|| run_miner(db, MinerKind::GsGrow, min_sup, limits));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
