//! Figure 4 — runtime of GSgrow and CloGSgrow while `min_sup` varies on the
//! TCAS-like loop-heavy program traces. CloGSgrow is exercised down to
//! `min_sup = 1`, the headline setting of the paper's TCAS experiment; the
//! all-pattern miner is only run at the top threshold (it is cut off below).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rgs_bench::datasets::{fig4_dataset, fig4_thresholds, Scale};
use rgs_bench::runner::{run_miner, MinerKind, RunLimits};

fn bench_fig4(c: &mut Criterion) {
    let (_, db) = fig4_dataset(Scale::Dev);
    let thresholds = fig4_thresholds(Scale::Dev);
    let limits = RunLimits::dev();
    let mut group = c.benchmark_group("fig4_tcas");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    // The lowest threshold of the sweep (min_sup = 1 at dev scale, matching
    // the paper's headline TCAS setting) is exercised once by the
    // experiments harness; benchmarking it with repeated Criterion samples
    // would dominate the whole bench suite, so the bench sweeps the other
    // thresholds.
    for &min_sup in &thresholds[..thresholds.len() - 1] {
        group.bench_with_input(
            BenchmarkId::new("closed_clogsgrow", min_sup),
            &min_sup,
            |b, &min_sup| b.iter(|| run_miner(&db, MinerKind::CloGsGrow, min_sup, limits)),
        );
    }
    let top = thresholds[0];
    group.bench_with_input(BenchmarkId::new("all_gsgrow", top), &top, |b, &min_sup| {
        b.iter(|| run_miner(&db, MinerKind::GsGrow, min_sup, limits));
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
