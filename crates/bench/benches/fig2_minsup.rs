//! Figure 2 — runtime of GSgrow ("All") and CloGSgrow ("Closed") while the
//! support threshold `min_sup` varies on the QUEST synthetic dataset
//! (D5C20N10S20, dev-scaled).
//!
//! The paper's shape: runtime grows as the threshold drops, and the closed
//! miner stays tractable at thresholds where the all-pattern miner must be
//! cut off.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rgs_bench::datasets::{fig2_dataset, fig2_thresholds, Scale};
use rgs_bench::runner::{run_miner, MinerKind, RunLimits};

fn bench_fig2(c: &mut Criterion) {
    let (_, db) = fig2_dataset(Scale::Dev);
    let thresholds = fig2_thresholds(Scale::Dev);
    let limits = RunLimits::dev();
    let mut group = c.benchmark_group("fig2_minsup");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for &min_sup in &thresholds {
        group.bench_with_input(
            BenchmarkId::new("closed_clogsgrow", min_sup),
            &min_sup,
            |b, &min_sup| b.iter(|| run_miner(&db, MinerKind::CloGsGrow, min_sup, limits)),
        );
    }
    // The all-pattern miner is only benchmarked above the cut-off threshold,
    // exactly like the paper's Figure 2 (points after "..." on the x-axis).
    for &min_sup in &thresholds[..thresholds.len() - 1] {
        group.bench_with_input(
            BenchmarkId::new("all_gsgrow", min_sup),
            &min_sup,
            |b, &min_sup| b.iter(|| run_miner(&db, MinerKind::GsGrow, min_sup, limits)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
