//! Bench for top-k closed mining: cost of the threshold-free exploratory
//! interface versus a conventional fixed-threshold CloGSgrow run.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rgs_bench::datasets::{fig2_dataset, Scale};
use rgs_core::{Miner, Mode};

fn bench_topk(c: &mut Criterion) {
    let (_, db) = fig2_dataset(Scale::Dev);
    let mut group = c.benchmark_group("topk_mining");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for k in [10usize, 50, 200] {
        group.bench_with_input(BenchmarkId::new("mine_top_k", k), &k, |b, &k| {
            b.iter(|| {
                Miner::new(&db)
                    .min_sup(5)
                    .mode(Mode::Closed)
                    .top_k(k)
                    .min_len(2)
                    .run()
            });
        });
    }
    for min_sup in [20u64, 30] {
        group.bench_with_input(
            BenchmarkId::new("clogsgrow_fixed_threshold", min_sup),
            &min_sup,
            |b, &min_sup| b.iter(|| Miner::new(&db).min_sup(min_sup).mode(Mode::Closed).run()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
