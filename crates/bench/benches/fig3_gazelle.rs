//! Figure 3 — runtime of GSgrow and CloGSgrow while `min_sup` varies on the
//! Gazelle-like clickstream (heavy-tailed session lengths).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rgs_bench::datasets::{fig3_dataset, fig3_thresholds, Scale};
use rgs_bench::runner::{run_miner, MinerKind, RunLimits};

fn bench_fig3(c: &mut Criterion) {
    let (_, db) = fig3_dataset(Scale::Dev);
    let thresholds = fig3_thresholds(Scale::Dev);
    let limits = RunLimits::dev();
    let mut group = c.benchmark_group("fig3_gazelle");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for &min_sup in &thresholds {
        group.bench_with_input(
            BenchmarkId::new("closed_clogsgrow", min_sup),
            &min_sup,
            |b, &min_sup| b.iter(|| run_miner(&db, MinerKind::CloGsGrow, min_sup, limits)),
        );
    }
    for &min_sup in &thresholds[..thresholds.len() - 1] {
        group.bench_with_input(
            BenchmarkId::new("all_gsgrow", min_sup),
            &min_sup,
            |b, &min_sup| b.iter(|| run_miner(&db, MinerKind::GsGrow, min_sup, limits)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
