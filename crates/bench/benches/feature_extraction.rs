//! Bench for the classification-feature pipeline: per-sequence support
//! extraction and the end-to-end mine → select → train pipeline on labeled
//! traces.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rgs_core::{Miner, Mode, Pattern};
use rgs_features::pipeline::{run_pipeline, PipelineConfig};
use rgs_features::{extract_features, LabeledDatabase};
use synthgen::labeled::LabeledTraceConfig;

fn corpus() -> LabeledDatabase {
    let (db, labels) = LabeledTraceConfig::default()
        .with_traces_per_class(40)
        .generate();
    LabeledDatabase::new(db, labels).expect("aligned labels")
}

fn bench_features(c: &mut Criterion) {
    let data = corpus();
    let mined = Miner::new(data.database())
        .min_sup(40)
        .mode(Mode::Closed)
        .max_pattern_length(4)
        .run();
    let candidates: Vec<Pattern> = mined
        .patterns
        .iter()
        .filter(|mp| mp.pattern.len() >= 2)
        .map(|mp| mp.pattern.clone())
        .collect();

    let mut group = c.benchmark_group("feature_pipeline");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_with_input(
        BenchmarkId::new("extract_features", candidates.len()),
        &candidates,
        |b, candidates| b.iter(|| extract_features(data.database(), candidates)),
    );
    group.bench_function("run_pipeline_end_to_end", |b| {
        b.iter(|| {
            run_pipeline(
                &data,
                &PipelineConfig::new(40, 6).with_max_pattern_length(4),
            )
            .expect("pipeline runs")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
