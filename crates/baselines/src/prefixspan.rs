//! PrefixSpan: classical sequential pattern mining by prefix-projected
//! pattern growth (Pei et al., ICDE 2001), specialized to sequences of
//! single events.
//!
//! The support of a pattern here is the **number of sequences** that contain
//! the pattern as a (gapped) subsequence — repetitions within a sequence do
//! not count. This is the semantics the paper contrasts with repetitive
//! support in Example 1.1 (`sup(AB) = sup(CD) = 2` under sequential pattern
//! mining).
//!
//! The implementation uses pseudo-projection: a projected database is a list
//! of `(sequence index, offset)` pairs, where `offset` is the position right
//! after the last matched event.

use std::collections::HashMap;

use seqdb::{EventId, SequenceDatabase};

/// A sequential pattern with its sequence-count support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequentialPattern {
    /// The events of the pattern.
    pub events: Vec<EventId>,
    /// The number of sequences containing the pattern.
    pub support: u64,
}

impl SequentialPattern {
    /// Returns `true` if `self`'s events form a (gapped) subsequence of
    /// `other`'s events.
    pub fn is_subpattern_of(&self, other: &SequentialPattern) -> bool {
        is_subsequence(&self.events, &other.events)
    }
}

/// Returns `true` when `needle` is a (gapped) subsequence of `haystack`.
pub(crate) fn is_subsequence(needle: &[EventId], haystack: &[EventId]) -> bool {
    let mut j = 0;
    for &e in haystack {
        if j < needle.len() && e == needle[j] {
            j += 1;
        }
    }
    j == needle.len()
}

/// Configuration for the sequential miners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequentialConfig {
    /// Minimum number of sequences that must contain a pattern.
    pub min_sup: u64,
    /// Optional maximum pattern length.
    pub max_pattern_length: Option<usize>,
    /// Optional cap on the number of emitted patterns (safety valve for
    /// experiments on dense data).
    pub max_patterns: Option<usize>,
}

impl SequentialConfig {
    /// Creates a configuration with the given support threshold.
    pub fn new(min_sup: u64) -> Self {
        Self {
            min_sup,
            max_pattern_length: None,
            max_patterns: None,
        }
    }

    /// Sets the maximum pattern length.
    pub fn with_max_pattern_length(mut self, max_len: usize) -> Self {
        self.max_pattern_length = Some(max_len);
        self
    }

    /// Sets the emitted-pattern cap.
    pub fn with_max_patterns(mut self, cap: usize) -> Self {
        self.max_patterns = Some(cap);
        self
    }
}

/// A pseudo-projected database: one `(sequence, offset)` entry per sequence
/// that still contains the current prefix, where `offset` is the 0-based
/// index into the event slice from which the postfix starts.
type Projection = Vec<(usize, usize)>;

/// Mines all frequent sequential patterns of `db` (PrefixSpan).
pub fn mine_sequential(db: &SequenceDatabase, config: &SequentialConfig) -> Vec<SequentialPattern> {
    let mut miner = PrefixSpan {
        db,
        config,
        result: Vec::new(),
        truncated: false,
    };
    let initial: Projection = (0..db.num_sequences()).map(|s| (s, 0)).collect();
    miner.grow(&mut Vec::new(), &initial);
    miner.result
}

struct PrefixSpan<'a> {
    db: &'a SequenceDatabase,
    config: &'a SequentialConfig,
    result: Vec<SequentialPattern>,
    truncated: bool,
}

impl PrefixSpan<'_> {
    /// Recursively grows `prefix` by every locally frequent event of the
    /// projected database.
    fn grow(&mut self, prefix: &mut Vec<EventId>, projection: &Projection) {
        if self.truncated {
            return;
        }
        if let Some(max_len) = self.config.max_pattern_length {
            if prefix.len() >= max_len {
                return;
            }
        }
        // Count, per candidate event, in how many projected sequences it
        // still occurs.
        let mut counts: HashMap<EventId, u64> = HashMap::new();
        for &(seq, offset) in projection {
            let view = self.db.sequence(seq).expect("sequence exists");
            let mut seen: Vec<EventId> = Vec::new();
            for e in view.iter_events_from(offset) {
                if !seen.contains(&e) {
                    seen.push(e);
                    *counts.entry(e).or_insert(0) += 1;
                }
            }
        }
        let mut candidates: Vec<(EventId, u64)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= self.config.min_sup)
            .collect();
        candidates.sort_by_key(|&(e, _)| e);

        for (event, support) in candidates {
            if self.truncated {
                return;
            }
            prefix.push(event);
            self.result.push(SequentialPattern {
                events: prefix.clone(),
                support,
            });
            if let Some(cap) = self.config.max_patterns {
                if self.result.len() >= cap {
                    self.truncated = true;
                    prefix.pop();
                    return;
                }
            }
            // Project: advance each sequence past its first occurrence of
            // `event` at or after the current offset.
            let mut projected: Projection = Vec::with_capacity(projection.len());
            for &(seq, offset) in projection {
                let view = self.db.sequence(seq).expect("sequence exists");
                if let Some(pos) = view.iter_events_from(offset).position(|e| e == event) {
                    projected.push((seq, offset + pos + 1));
                }
            }
            self.grow(prefix, &projected);
            prefix.pop();
        }
    }
}

/// Computes the sequence-count support of an arbitrary pattern directly
/// (used by tests and by the closed-pattern checkers).
pub fn sequence_support(db: &SequenceDatabase, pattern: &[EventId]) -> u64 {
    db.sequences()
        .filter(|s| s.contains_subsequence(pattern))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_db() -> SequenceDatabase {
        // Example 1.1 of the paper.
        SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"])
    }

    fn pattern(db: &SequenceDatabase, s: &str) -> Vec<EventId> {
        db.pattern_from_str(s).unwrap()
    }

    #[test]
    fn sequence_support_ignores_within_sequence_repetition() {
        // Under sequential-pattern semantics AB and CD both have support 2.
        let db = example_db();
        assert_eq!(sequence_support(&db, &pattern(&db, "AB")), 2);
        assert_eq!(sequence_support(&db, &pattern(&db, "CD")), 2);
        assert_eq!(sequence_support(&db, &pattern(&db, "BB")), 1);
        assert_eq!(sequence_support(&db, &pattern(&db, "DD")), 0);
    }

    #[test]
    fn prefixspan_finds_all_frequent_sequential_patterns() {
        let db = example_db();
        let mined = mine_sequential(&db, &SequentialConfig::new(2));
        // Brute force over all patterns up to length 4.
        let events: Vec<EventId> = db.catalog().ids().collect();
        let mut expected: Vec<(Vec<EventId>, u64)> = Vec::new();
        let mut frontier: Vec<Vec<EventId>> = vec![Vec::new()];
        for _ in 0..4 {
            let mut next = Vec::new();
            for prefix in &frontier {
                for &e in &events {
                    let mut candidate = prefix.clone();
                    candidate.push(e);
                    let support = sequence_support(&db, &candidate);
                    if support >= 2 {
                        expected.push((candidate.clone(), support));
                        next.push(candidate);
                    }
                }
            }
            frontier = next;
        }
        assert_eq!(mined.len(), expected.len());
        for (events, support) in expected {
            let found = mined
                .iter()
                .find(|p| p.events == events)
                .unwrap_or_else(|| panic!("missing pattern {events:?}"));
            assert_eq!(found.support, support);
        }
    }

    #[test]
    fn supports_reported_by_prefixspan_match_direct_counting() {
        let db = SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC", "CBA"]);
        let mined = mine_sequential(&db, &SequentialConfig::new(1));
        for p in &mined {
            assert_eq!(
                p.support,
                sequence_support(&db, &p.events),
                "{:?}",
                p.events
            );
        }
    }

    #[test]
    fn max_pattern_length_limits_output() {
        let db = example_db();
        let mined = mine_sequential(&db, &SequentialConfig::new(1).with_max_pattern_length(2));
        assert!(mined.iter().all(|p| p.events.len() <= 2));
        assert!(!mined.is_empty());
    }

    #[test]
    fn max_patterns_truncates() {
        let db = example_db();
        let mined = mine_sequential(&db, &SequentialConfig::new(1).with_max_patterns(3));
        assert_eq!(mined.len(), 3);
    }

    #[test]
    fn empty_database_mines_nothing() {
        let db = SequenceDatabase::new();
        assert!(mine_sequential(&db, &SequentialConfig::new(1)).is_empty());
    }

    #[test]
    fn subpattern_relation_on_sequential_patterns() {
        let db = example_db();
        let ab = SequentialPattern {
            events: pattern(&db, "AB"),
            support: 2,
        };
        let acb = SequentialPattern {
            events: pattern(&db, "ACB"),
            support: 1,
        };
        assert!(ab.is_subpattern_of(&acb));
        assert!(!acb.is_subpattern_of(&ab));
    }
}
