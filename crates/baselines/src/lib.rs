//! # baselines — sequential-pattern miners and alternative support semantics
//!
//! The ICDE'09 paper positions repetitive gapped subsequence mining against
//! two families of related work:
//!
//! 1. **Sequential pattern mining** (PrefixSpan, CloSpan, BIDE, SPAM), where
//!    the support of a pattern is the *number of sequences* containing it —
//!    repetitions within a sequence are ignored. The experiment section
//!    compares CloGSgrow's runtime against these miners; this crate provides
//!    from-scratch implementations of [`prefixspan`] (all sequential
//!    patterns), [`bide`] (closed sequential patterns via bidirectional
//!    extension checking), [`clospan_lite`] (closed patterns by
//!    post-filtering, used to cross-check BIDE), and [`spam`] (vertical
//!    bitmap mining, cross-checked against PrefixSpan).
//! 2. **Alternative occurrence/support semantics** from Table I: episode
//!    mining with fixed-width or minimal windows, periodic patterns with a
//!    gap requirement, interaction patterns over substrings, and iterative
//!    patterns (MSC/LSC semantics). The [`semantics`] module implements each
//!    of those support counters so the Example 1.1 comparison can be
//!    reproduced exactly, and [`episode`] provides WINEPI/MINEPI-style
//!    serial episode miners on top of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bide;
pub mod clospan_lite;
pub mod episode;
pub mod prefixspan;
pub mod semantics;
pub mod spam;

pub use bide::mine_closed_sequential;
pub use clospan_lite::mine_closed_sequential_by_filter;
pub use episode::{mine_episodes, mine_episodes_database, Episode, EpisodeConfig};
pub use prefixspan::{mine_sequential, SequentialPattern};
pub use spam::{mine_sequential_spam, PositionBitmap, VerticalDatabase};
