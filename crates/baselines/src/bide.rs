//! BIDE-style mining of **closed** sequential patterns.
//!
//! A sequential pattern `P` is closed when no super-pattern of `P` has the
//! same sequence-count support (Wang & Han, ICDE 2004). BIDE detects this
//! without keeping previously mined patterns by checking *forward*
//! extensions (an event appended after the pattern) and *backward*
//! extensions (an event inserted before the pattern or between two of its
//! events): `P` is closed iff no such extension preserves the support.
//!
//! This implementation runs the same prefix-projected DFS as
//! [`crate::prefixspan`] and applies the bidirectional extension check at
//! every node. The BackScan search-space pruning of the original paper is
//! not implemented — the output is identical, the search just visits every
//! frequent prefix (this is sufficient for the runtime-shape comparison of
//! the evaluation and is cross-checked against the post-filtering miner in
//! [`crate::clospan_lite`]).

use std::collections::HashMap;

use seqdb::{EventId, SequenceDatabase};

use crate::prefixspan::{sequence_support, SequentialConfig, SequentialPattern};

/// Mines the closed frequent sequential patterns of `db`.
pub fn mine_closed_sequential(
    db: &SequenceDatabase,
    config: &SequentialConfig,
) -> Vec<SequentialPattern> {
    let mut miner = Bide {
        db,
        config,
        result: Vec::new(),
        truncated: false,
    };
    let initial: Vec<(usize, usize)> = (0..db.num_sequences()).map(|s| (s, 0)).collect();
    miner.grow(&mut Vec::new(), &initial);
    miner.result
}

struct Bide<'a> {
    db: &'a SequenceDatabase,
    config: &'a SequentialConfig,
    result: Vec<SequentialPattern>,
    truncated: bool,
}

impl Bide<'_> {
    fn grow(&mut self, prefix: &mut Vec<EventId>, projection: &[(usize, usize)]) {
        if self.truncated {
            return;
        }
        if let Some(max_len) = self.config.max_pattern_length {
            if prefix.len() >= max_len {
                return;
            }
        }
        let mut counts: HashMap<EventId, u64> = HashMap::new();
        for &(seq, offset) in projection {
            let view = self.db.sequence(seq).expect("sequence exists");
            let mut seen: Vec<EventId> = Vec::new();
            for e in view.iter_events_from(offset) {
                if !seen.contains(&e) {
                    seen.push(e);
                    *counts.entry(e).or_insert(0) += 1;
                }
            }
        }
        let mut candidates: Vec<(EventId, u64)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= self.config.min_sup)
            .collect();
        candidates.sort_by_key(|&(e, _)| e);

        for (event, support) in candidates {
            if self.truncated {
                return;
            }
            prefix.push(event);
            if is_closed_sequential(self.db, prefix, support) {
                self.result.push(SequentialPattern {
                    events: prefix.clone(),
                    support,
                });
                if let Some(cap) = self.config.max_patterns {
                    if self.result.len() >= cap {
                        self.truncated = true;
                        prefix.pop();
                        return;
                    }
                }
            }
            let mut projected: Vec<(usize, usize)> = Vec::with_capacity(projection.len());
            for &(seq, offset) in projection {
                let view = self.db.sequence(seq).expect("sequence exists");
                if let Some(pos) = view.iter_events_from(offset).position(|e| e == event) {
                    projected.push((seq, offset + pos + 1));
                }
            }
            self.grow(prefix, &projected);
            prefix.pop();
        }
    }
}

/// The bidirectional extension check: `pattern` (with sequence-count support
/// `support`) is closed iff no single-event insertion at any slot —
/// before the pattern, between two events, or after it — yields a
/// super-pattern with the same support.
pub fn is_closed_sequential(db: &SequenceDatabase, pattern: &[EventId], support: u64) -> bool {
    let candidate_events: Vec<EventId> = db.catalog().ids().collect();
    for slot in 0..=pattern.len() {
        for &event in &candidate_events {
            let mut extended = Vec::with_capacity(pattern.len() + 1);
            extended.extend_from_slice(&pattern[..slot]);
            extended.push(event);
            extended.extend_from_slice(&pattern[slot..]);
            if extended.len() == pattern.len() + 1 && sequence_support(db, &extended) == support {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clospan_lite::mine_closed_sequential_by_filter;
    use crate::prefixspan::mine_sequential;

    fn pattern(db: &SequenceDatabase, s: &str) -> Vec<EventId> {
        db.pattern_from_str(s).unwrap()
    }

    #[test]
    fn closed_sequential_patterns_on_example_1_1() {
        let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
        let closed = mine_closed_sequential(&db, &SequentialConfig::new(2));
        // ABCD is contained in both sequences, so every sub-pattern of ABCD
        // with support 2 is non-closed; ABCD itself is closed.
        let abcd = pattern(&db, "ABCD");
        assert!(closed.iter().any(|p| p.events == abcd && p.support == 2));
        let ab = pattern(&db, "AB");
        assert!(!closed.iter().any(|p| p.events == ab));
    }

    #[test]
    fn bide_agrees_with_post_filtering_on_small_databases() {
        for rows in [
            vec!["AABCDABB", "ABCD"],
            vec!["ABCABCA", "AABBCCC"],
            vec!["ABCACBDDB", "ACDBACADD"],
            vec!["CABABABABABD", "ABCD", "BCA"],
        ] {
            let db = SequenceDatabase::from_str_rows(&rows);
            for min_sup in [1, 2] {
                let config = SequentialConfig::new(min_sup);
                let mut bide = mine_closed_sequential(&db, &config);
                let mut filtered = mine_closed_sequential_by_filter(&db, &config);
                bide.sort_by(|a, b| a.events.cmp(&b.events));
                filtered.sort_by(|a, b| a.events.cmp(&b.events));
                assert_eq!(bide, filtered, "rows {rows:?} min_sup {min_sup}");
            }
        }
    }

    #[test]
    fn closed_output_is_a_subset_of_all_output() {
        let db = SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"]);
        let config = SequentialConfig::new(2);
        let all = mine_sequential(&db, &config);
        let closed = mine_closed_sequential(&db, &config);
        assert!(closed.len() <= all.len());
        for p in &closed {
            assert!(all
                .iter()
                .any(|q| q.events == p.events && q.support == p.support));
        }
    }

    #[test]
    fn every_frequent_sequential_pattern_has_a_closed_superpattern() {
        let db = SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"]);
        let config = SequentialConfig::new(2);
        let all = mine_sequential(&db, &config);
        let closed = mine_closed_sequential(&db, &config);
        for p in &all {
            let covered = closed.iter().any(|c| {
                c.support == p.support
                    && (c.events == p.events
                        || crate::prefixspan::is_subsequence(&p.events, &c.events))
            });
            assert!(covered, "{:?} not covered", p.events);
        }
    }

    #[test]
    fn single_sequence_database_has_one_maximal_closed_pattern() {
        let db = SequenceDatabase::from_str_rows(&["ABC"]);
        let closed = mine_closed_sequential(&db, &SequentialConfig::new(1));
        // The only closed pattern is ABC itself (support 1).
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].events, pattern(&db, "ABC"));
    }
}
