//! Serial episode mining over event sequences (Mannila, Toivonen & Verkamo).
//!
//! Episode mining is the second family of related work the paper discusses
//! (Table I, row "Manilla et al."): the input is a single long sequence, a
//! *serial episode* is an ordered list of events, and the support is either
//!
//! * **WINEPI** — the number of width-`w` sliding windows that contain the
//!   episode as a subsequence (definition (i) in the paper's discussion), or
//! * **MINEPI** — the number of *minimal windows* containing the episode
//!   (definition (ii)).
//!
//! The WINEPI support is anti-monotone under sub-episodes (any window
//! containing an episode contains all of its sub-episodes), so a prefix DFS
//! with Apriori pruning enumerates all frequent serial episodes. The MINEPI
//! count is reported alongside each mined episode but is not itself used for
//! pruning (it is not anti-monotone in general).
//!
//! These miners serve two purposes in the reproduction: they let the Table I
//! comparison be produced by *miners*, not just by per-pattern support
//! calculators, and they provide a qualitative contrast with repetitive
//! support (window-based supports over-count overlapping occurrences, the
//! paper's motivating criticism).

use seqdb::{EventId, SeqView, SequenceDatabase};

use crate::semantics::{episode_window_count, minimal_window_count};

/// A mined serial episode with its window-based supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Episode {
    /// The events of the episode, in order.
    pub events: Vec<EventId>,
    /// WINEPI support: number of width-`w` windows containing the episode.
    pub window_support: u64,
    /// MINEPI support: number of minimal windows containing the episode.
    pub minimal_window_support: u64,
}

/// Configuration of the serial episode miners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpisodeConfig {
    /// Window width `w` (in events).
    pub window_width: usize,
    /// Minimum WINEPI support (number of windows).
    pub min_window_support: u64,
    /// Maximum episode length; episodes longer than the window can never
    /// occur, so this is additionally capped at `window_width`.
    pub max_episode_length: usize,
}

impl EpisodeConfig {
    /// Creates a configuration with window width `window_width` and
    /// threshold `min_window_support`.
    pub fn new(window_width: usize, min_window_support: u64) -> Self {
        Self {
            window_width,
            min_window_support,
            max_episode_length: window_width,
        }
    }

    /// Caps the episode length.
    pub fn with_max_episode_length(mut self, max_len: usize) -> Self {
        self.max_episode_length = max_len;
        self
    }

    fn effective_max_length(&self) -> usize {
        self.max_episode_length.min(self.window_width)
    }
}

/// Mines every frequent serial episode of a single `sequence`.
pub fn mine_episodes(sequence: SeqView<'_>, config: &EpisodeConfig) -> Vec<Episode> {
    if config.window_width == 0 || sequence.is_empty() {
        return Vec::new();
    }
    let mut alphabet: Vec<EventId> = sequence.to_vec();
    alphabet.sort_unstable();
    alphabet.dedup();

    let mut result = Vec::new();
    let mut stack: Vec<Vec<EventId>> = alphabet.iter().map(|&e| vec![e]).collect();
    // Depth-first enumeration with Apriori pruning on the WINEPI support.
    while let Some(candidate) = stack.pop() {
        let window_support = episode_window_count(sequence, &candidate, config.window_width);
        if window_support < config.min_window_support.max(1) {
            continue;
        }
        if candidate.len() < config.effective_max_length() {
            for &e in &alphabet {
                let mut grown = candidate.clone();
                grown.push(e);
                stack.push(grown);
            }
        }
        result.push(Episode {
            minimal_window_support: minimal_window_count(sequence, &candidate),
            window_support,
            events: candidate,
        });
    }
    result.sort_by(|a, b| {
        b.window_support
            .cmp(&a.window_support)
            .then_with(|| a.events.len().cmp(&b.events.len()))
            .then_with(|| a.events.cmp(&b.events))
    });
    result
}

/// Mines frequent serial episodes of every sequence of a database and sums
/// the per-sequence window supports (the multi-sequence generalization used
/// by the experiment harness; episode mining proper is single-sequence).
pub fn mine_episodes_database(db: &SequenceDatabase, config: &EpisodeConfig) -> Vec<Episode> {
    use std::collections::BTreeMap;
    let mut totals: BTreeMap<Vec<EventId>, (u64, u64)> = BTreeMap::new();
    for sequence in db.sequences() {
        for episode in mine_episodes(sequence, config) {
            let entry = totals.entry(episode.events).or_insert((0, 0));
            entry.0 += episode.window_support;
            entry.1 += episode.minimal_window_support;
        }
    }
    let mut result: Vec<Episode> = totals
        .into_iter()
        .map(
            |(events, (window_support, minimal_window_support))| Episode {
                events,
                window_support,
                minimal_window_support,
            },
        )
        .filter(|e| e.window_support >= config.min_window_support.max(1))
        .collect();
    result.sort_by(|a, b| {
        b.window_support
            .cmp(&a.window_support)
            .then_with(|| a.events.len().cmp(&b.events.len()))
            .then_with(|| a.events.cmp(&b.events))
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// S1 of Example 1.1: AABCDABB.
    fn s1() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["AABCDABB"])
    }

    #[test]
    fn example_1_1_window_support_of_ab_is_four() {
        // The paper: with w = 4, serial episode AB has support 4 in S1
        // (windows [1,4], [2,5], [4,7], [5,8]).
        let db = s1();
        let ab = db.pattern_from_str("AB").unwrap();
        let episodes = mine_episodes(db.sequence(0).unwrap(), &EpisodeConfig::new(4, 1));
        let found = episodes
            .iter()
            .find(|e| e.events == ab)
            .expect("AB is a frequent episode");
        assert_eq!(found.window_support, 4);
        // Definition (ii): AB has 2 minimal windows in S1.
        assert_eq!(found.minimal_window_support, 2);
    }

    #[test]
    fn mining_respects_the_support_threshold_and_window_length() {
        let db = s1();
        let config = EpisodeConfig::new(4, 3);
        let episodes = mine_episodes(db.sequence(0).unwrap(), &config);
        assert!(!episodes.is_empty());
        for e in &episodes {
            assert!(e.window_support >= 3, "{e:?}");
            assert!(e.events.len() <= 4);
        }
    }

    #[test]
    fn results_are_sorted_by_window_support_descending() {
        let db = s1();
        let episodes = mine_episodes(db.sequence(0).unwrap(), &EpisodeConfig::new(4, 1));
        for w in episodes.windows(2) {
            assert!(w[0].window_support >= w[1].window_support);
        }
    }

    #[test]
    fn every_sub_episode_of_a_frequent_episode_is_frequent() {
        // The Apriori property WINEPI relies on.
        let db = s1();
        let episodes = mine_episodes(db.sequence(0).unwrap(), &EpisodeConfig::new(5, 2));
        for e in &episodes {
            if e.events.len() < 2 {
                continue;
            }
            for drop in 0..e.events.len() {
                let mut sub = e.events.clone();
                sub.remove(drop);
                assert!(
                    episodes.iter().any(|other| other.events == sub),
                    "sub-episode {:?} of {:?} missing",
                    sub,
                    e.events
                );
            }
        }
    }

    #[test]
    fn episodes_longer_than_the_window_are_never_reported() {
        let db = SequenceDatabase::from_str_rows(&["ABCABCABC"]);
        let episodes = mine_episodes(db.sequence(0).unwrap(), &EpisodeConfig::new(2, 1));
        assert!(episodes.iter().all(|e| e.events.len() <= 2));
    }

    #[test]
    fn zero_width_windows_and_empty_sequences_yield_nothing() {
        let db = s1();
        assert!(mine_episodes(db.sequence(0).unwrap(), &EpisodeConfig::new(0, 1)).is_empty());
        let empty = SequenceDatabase::from_str_rows(&[""]);
        assert!(mine_episodes(empty.sequence(0).unwrap(), &EpisodeConfig::new(3, 1)).is_empty());
    }

    #[test]
    fn database_level_mining_sums_per_sequence_supports() {
        let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
        let ab = db.pattern_from_str("AB").unwrap();
        let episodes = mine_episodes_database(&db, &EpisodeConfig::new(4, 1));
        let found = episodes.iter().find(|e| e.events == ab).unwrap();
        // 4 windows in S1 plus 1 window in S2 (the only width-4 window).
        assert_eq!(found.window_support, 5);
    }

    #[test]
    fn max_episode_length_caps_the_search() {
        let db = s1();
        let config = EpisodeConfig::new(6, 1).with_max_episode_length(2);
        let episodes = mine_episodes(db.sequence(0).unwrap(), &config);
        assert!(episodes.iter().all(|e| e.events.len() <= 2));
    }
}
