//! CloSpan-lite: closed sequential patterns by mine-all + post-filtering.
//!
//! CloSpan (Yan, Han & Afshar, SDM 2003) mines a superset of the closed
//! sequential patterns and eliminates the non-closed ones in a final
//! pruning step. This module keeps only that high-level structure: it runs
//! PrefixSpan to obtain **all** frequent sequential patterns and then drops
//! every pattern that has a super-pattern with the same support in the
//! result. Because the mined set is complete, the filter is exact.
//!
//! The module exists mainly as an independent oracle for
//! [`crate::bide::mine_closed_sequential`] and as the third point of the
//! runtime comparison in the experiment harness (the paper compares against
//! PrefixSpan, CloSpan and BIDE).

use seqdb::SequenceDatabase;

use crate::prefixspan::{mine_sequential, SequentialConfig, SequentialPattern};

/// Mines the closed frequent sequential patterns by post-filtering the
/// complete PrefixSpan output.
pub fn mine_closed_sequential_by_filter(
    db: &SequenceDatabase,
    config: &SequentialConfig,
) -> Vec<SequentialPattern> {
    let all = mine_sequential(db, config);
    filter_closed(&all)
}

/// Keeps only the patterns with no equal-support proper super-pattern in
/// `patterns`. The input must be a *complete* frequent-pattern set for the
/// filter to be exact (otherwise a witness super-pattern could be missing).
pub fn filter_closed(patterns: &[SequentialPattern]) -> Vec<SequentialPattern> {
    patterns
        .iter()
        .filter(|candidate| {
            !patterns.iter().any(|other| {
                other.support == candidate.support
                    && other.events.len() > candidate.events.len()
                    && candidate.is_subpattern_of(other)
            })
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdb::EventId;

    fn sp(ids: &[u32], support: u64) -> SequentialPattern {
        SequentialPattern {
            events: ids.iter().map(|&i| EventId(i)).collect(),
            support,
        }
    }

    #[test]
    fn filter_drops_subpatterns_with_equal_support() {
        let patterns = vec![sp(&[0], 2), sp(&[0, 1], 2), sp(&[1], 3)];
        let closed = filter_closed(&patterns);
        assert!(closed.contains(&sp(&[0, 1], 2)));
        assert!(closed.contains(&sp(&[1], 3)));
        assert!(!closed.contains(&sp(&[0], 2)));
    }

    #[test]
    fn filter_keeps_subpatterns_with_strictly_larger_support() {
        let patterns = vec![sp(&[0], 5), sp(&[0, 1], 2)];
        let closed = filter_closed(&patterns);
        assert_eq!(closed.len(), 2);
    }

    #[test]
    fn mine_and_filter_on_the_larger_motivating_example() {
        // The paper's larger related-work example (scaled down from 50+50 to
        // 5+5 sequences): CABABABABABD and ABCD. Under sequential semantics
        // AB is contained in every sequence (support 10), but so is its
        // super-pattern ABD, hence AB is not closed; ABD is closed.
        let mut rows: Vec<&str> = vec!["CABABABABABD"; 5];
        rows.extend(std::iter::repeat_n("ABCD", 5));
        let db = SequenceDatabase::from_str_rows(&rows);
        let closed = mine_closed_sequential_by_filter(&db, &SequentialConfig::new(5));
        let ab = db.pattern_from_str("AB").unwrap();
        let abd = db.pattern_from_str("ABD").unwrap();
        assert!(!closed.iter().any(|p| p.events == ab), "AB is not closed");
        assert!(
            closed.iter().any(|p| p.events == abd && p.support == 10),
            "ABD should be closed with support 10"
        );
    }

    #[test]
    fn empty_input_filters_to_empty_output() {
        assert!(filter_closed(&[]).is_empty());
    }
}
