//! Alternative occurrence/support semantics from the related-work
//! comparison (Table I of the paper).
//!
//! Each function computes the support of a pattern under the semantics of
//! one line of Table I, so the Example 1.1 comparison (`S1 = AABCDABB`,
//! `S2 = ABCD`, patterns `AB` and `CD`) can be reproduced number by number:
//!
//! | semantics | `sup(AB)` in the example |
//! |---|---|
//! | sequential pattern mining (sequence count) | 2 |
//! | episodes, width-4 windows (per `S1`) | 4 |
//! | episodes, minimal windows (per `S1`) | 2 |
//! | gap requirement 0..=3 (per `S1`) | 4 |
//! | interaction patterns (whole database) | 9 |
//! | iterative patterns (whole database) | 3 |
//! | repetitive support (this paper, whole database) | 4 |
//!
//! The counters are deliberately straightforward (polynomial scans); they
//! exist for semantic comparison and tests, not for large-scale mining.

use seqdb::{EventId, SeqView, SequenceDatabase};

/// Sequential pattern mining support: the number of sequences of `db` that
/// contain `pattern` as a (gapped) subsequence.
pub fn sequence_count_support(db: &SequenceDatabase, pattern: &[EventId]) -> u64 {
    db.sequences()
        .filter(|s| s.contains_subsequence(pattern))
        .count() as u64
}

/// Episode mining, definition (i) of the paper's related-work discussion:
/// the number of width-`width` windows (substrings of `width` consecutive
/// positions, fully inside the sequence) that contain `pattern` as a
/// subsequence.
pub fn episode_window_count(sequence: SeqView<'_>, pattern: &[EventId], width: usize) -> u64 {
    if pattern.is_empty() || width == 0 || sequence.len() < width {
        return 0;
    }
    let mut count = 0u64;
    for start in 1..=(sequence.len() - width + 1) {
        if window_contains(sequence, start, start + width - 1, pattern) {
            count += 1;
        }
    }
    count
}

/// Episode mining over a whole database: the sum of per-sequence window
/// counts.
pub fn episode_window_support(db: &SequenceDatabase, pattern: &[EventId], width: usize) -> u64 {
    db.sequences()
        .map(|s| episode_window_count(s, pattern, width))
        .sum()
}

/// Episode mining, definition (ii): the number of **minimal windows** of
/// `sequence` containing `pattern` — windows `[s, e]` that contain the
/// pattern as a subsequence while no proper sub-window does.
pub fn minimal_window_count(sequence: SeqView<'_>, pattern: &[EventId]) -> u64 {
    if pattern.is_empty() {
        return 0;
    }
    // For every end position where the last pattern event matches, find the
    // largest (latest) start such that the pattern fits in [start, end] with
    // its last event at `end`; that window is the tightest one ending there.
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for end in 1..=sequence.len() {
        if sequence.at(end) != Some(*pattern.last().expect("non-empty")) {
            continue;
        }
        if let Some(start) = latest_start_for_end(sequence, pattern, end) {
            candidates.push((start, end));
        }
    }
    // A candidate is a minimal window iff it does not strictly contain
    // another candidate.
    let minimal = candidates
        .iter()
        .filter(|&&(s, e)| {
            !candidates
                .iter()
                .any(|&(s2, e2)| (s2, e2) != (s, e) && s <= s2 && e2 <= e)
        })
        .count();
    minimal as u64
}

/// Minimal-window support over a whole database.
pub fn minimal_window_support(db: &SequenceDatabase, pattern: &[EventId]) -> u64 {
    db.sequences()
        .map(|s| minimal_window_count(s, pattern))
        .sum()
}

/// Gap-requirement semantics (periodic patterns with gap requirement): the
/// number of **all** occurrences (landmarks) of `pattern` in `sequence`
/// where every pair of consecutive positions has between `min_gap` and
/// `max_gap` events strictly between them. Overlapping occurrences all
/// count.
pub fn gap_constrained_count(
    sequence: SeqView<'_>,
    pattern: &[EventId],
    min_gap: usize,
    max_gap: usize,
) -> u64 {
    if pattern.is_empty() {
        return 0;
    }
    // Dynamic programming over positions: ways[j][pos] = number of
    // occurrences of pattern[..=j] ending exactly at `pos`.
    let len = sequence.len();
    let mut ways = vec![0u64; len + 1];
    #[allow(clippy::needless_range_loop)] // 1-based positions mirror the paper's indexing
    for pos in 1..=len {
        if sequence.at(pos) == Some(pattern[0]) {
            ways[pos] = 1;
        }
    }
    for &event in &pattern[1..] {
        let mut next = vec![0u64; len + 1];
        #[allow(clippy::needless_range_loop)] // 1-based positions mirror the paper's indexing
        for pos in 1..=len {
            if sequence.at(pos) != Some(event) {
                continue;
            }
            // Previous event must sit at pos' with min_gap..=max_gap events
            // strictly between, i.e. pos - pos' - 1 in [min_gap, max_gap].
            let lo = pos.saturating_sub(max_gap + 1).max(1);
            let hi = pos.saturating_sub(min_gap + 1).min(len);
            // min_gap > max_gap (or pos too early) leaves no admissible
            // previous position.
            if lo <= hi {
                next[pos] += ways[lo..=hi].iter().sum::<u64>();
            }
        }
        ways = next;
    }
    ways.iter().sum()
}

/// Gap-requirement support over a whole database.
pub fn gap_constrained_support(
    db: &SequenceDatabase,
    pattern: &[EventId],
    min_gap: usize,
    max_gap: usize,
) -> u64 {
    db.sequences()
        .map(|s| gap_constrained_count(s, pattern, min_gap, max_gap))
        .sum()
}

/// Interaction-pattern semantics (El-Ramly et al.): the number of substrings
/// `[i, j]` of the sequences of `db` such that the substring's first event
/// equals the pattern's first event, its last event equals the pattern's
/// last event, and the pattern is contained in the substring as a
/// subsequence.
pub fn interaction_pattern_support(db: &SequenceDatabase, pattern: &[EventId]) -> u64 {
    if pattern.is_empty() {
        return 0;
    }
    let first = pattern[0];
    let last = *pattern.last().expect("non-empty");
    let mut count = 0u64;
    for sequence in db.sequences() {
        for start in 1..=sequence.len() {
            if sequence.at(start) != Some(first) {
                continue;
            }
            let min_end = if pattern.len() == 1 { start } else { start + 1 };
            for end in min_end..=sequence.len() {
                if sequence.at(end) != Some(last) {
                    continue;
                }
                if window_embeds_with_fixed_ends(sequence, start, end, pattern) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Iterative-pattern semantics (Lo, Khoo & Liu; MSC/LSC style): an
/// occurrence of `e1 e2 ... en` is a substring matching
/// `e1 G* e2 G* ... G* en` where `G` is the set of all events **not** in the
/// pattern. The support is the number of such occurrences in the database.
pub fn iterative_pattern_support(db: &SequenceDatabase, pattern: &[EventId]) -> u64 {
    if pattern.is_empty() {
        return 0;
    }
    let alphabet: Vec<EventId> = {
        let mut a = pattern.to_vec();
        a.sort_unstable();
        a.dedup();
        a
    };
    let mut count = 0u64;
    for sequence in db.sequences() {
        'starts: for start in 1..=sequence.len() {
            if sequence.at(start) != Some(pattern[0]) {
                continue;
            }
            let mut expect = 1usize;
            let mut pos = start + 1;
            while expect < pattern.len() {
                let Some(event) = sequence.at(pos) else {
                    continue 'starts;
                };
                if event == pattern[expect] {
                    expect += 1;
                } else if alphabet.binary_search(&event).is_ok() {
                    // An event of the pattern's alphabet interrupts the
                    // occurrence: this start does not produce one.
                    continue 'starts;
                }
                pos += 1;
            }
            count += 1;
        }
    }
    count
}

/// Returns `true` when `pattern` is a subsequence of the window
/// `[start, end]` (1-based, inclusive) of `sequence`.
fn window_contains(sequence: SeqView<'_>, start: usize, end: usize, pattern: &[EventId]) -> bool {
    let mut j = 0;
    for pos in start..=end {
        if j < pattern.len() && sequence.at(pos) == Some(pattern[j]) {
            j += 1;
        }
    }
    j == pattern.len()
}

/// Returns `true` when `pattern` embeds in `[start, end]` with its first
/// event exactly at `start` and its last event exactly at `end`.
fn window_embeds_with_fixed_ends(
    sequence: SeqView<'_>,
    start: usize,
    end: usize,
    pattern: &[EventId],
) -> bool {
    if sequence.at(start) != Some(pattern[0]) {
        return false;
    }
    if pattern.len() == 1 {
        return start == end;
    }
    if sequence.at(end) != Some(*pattern.last().expect("non-empty")) || end <= start {
        return false;
    }
    let middle = &pattern[1..pattern.len() - 1];
    if middle.is_empty() {
        return true;
    }
    if end - start < 2 {
        return false;
    }
    window_contains(sequence, start + 1, end - 1, middle)
}

/// The latest start `s` such that `pattern` embeds into `[s, end]` with its
/// last event at `end`, or `None` if no embedding ends at `end`.
fn latest_start_for_end(sequence: SeqView<'_>, pattern: &[EventId], end: usize) -> Option<usize> {
    // Match the pattern backwards from `end`, greedily choosing the latest
    // possible position for each event.
    let mut pos = end;
    let mut j = pattern.len();
    while j > 0 {
        let target = pattern[j - 1];
        let mut found = None;
        let upper = if j == pattern.len() { end } else { pos - 1 };
        let mut p = upper;
        while p >= 1 {
            if sequence.at(p) == Some(target) {
                found = Some(p);
                break;
            }
            if p == 1 {
                break;
            }
            p -= 1;
        }
        let found = found?;
        if j == pattern.len() && found != end {
            return None;
        }
        pos = found;
        j -= 1;
    }
    Some(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 1.1: S1 = AABCDABB, S2 = ABCD.
    fn example_db() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"])
    }

    #[test]
    fn gap_constrained_count_with_min_gap_above_max_gap_is_zero() {
        // An inverted gap requirement admits no previous position; it must
        // yield zero rather than panic on an inverted slice range.
        let db = SequenceDatabase::from_str_rows(&["ABAB"]);
        let ab = db.pattern_from_str("AB").unwrap();
        let seq = db.sequence(0).unwrap();
        assert_eq!(gap_constrained_count(seq, &ab, 3, 0), 0);
        assert_eq!(gap_constrained_count(seq, &ab, 0, 0), 2); // sanity: adjacent ABs
    }

    fn pattern(db: &SequenceDatabase, s: &str) -> Vec<EventId> {
        db.pattern_from_str(s).unwrap()
    }

    #[test]
    fn sequential_support_matches_the_paper() {
        let db = example_db();
        assert_eq!(sequence_count_support(&db, &pattern(&db, "AB")), 2);
        assert_eq!(sequence_count_support(&db, &pattern(&db, "CD")), 2);
    }

    #[test]
    fn episode_width_4_windows_match_the_paper() {
        // "for w = 4, serial episode AB has support 4 in S1 (windows [1,4],
        // [2,5], [4,7], and [5,8] contain AB)".
        let db = example_db();
        let s1 = db.sequence(0).unwrap();
        assert_eq!(episode_window_count(s1, &pattern(&db, "AB"), 4), 4);
        // In S2 = ABCD only the single window [1,4] contains AB.
        let s2 = db.sequence(1).unwrap();
        assert_eq!(episode_window_count(s2, &pattern(&db, "AB"), 4), 1);
        assert_eq!(episode_window_support(&db, &pattern(&db, "AB"), 4), 5);
    }

    #[test]
    fn minimal_windows_match_the_paper() {
        // "in definition (ii), the support of AB is 2" (in S1).
        let db = example_db();
        let s1 = db.sequence(0).unwrap();
        assert_eq!(minimal_window_count(s1, &pattern(&db, "AB")), 2);
        let s2 = db.sequence(1).unwrap();
        assert_eq!(minimal_window_count(s2, &pattern(&db, "AB")), 1);
        assert_eq!(minimal_window_support(&db, &pattern(&db, "AB")), 3);
    }

    #[test]
    fn gap_requirement_matches_the_paper() {
        // "given requirement gap >= 0 and <= 3, pattern AB has support 4 in
        // S1".
        let db = example_db();
        let s1 = db.sequence(0).unwrap();
        assert_eq!(gap_constrained_count(s1, &pattern(&db, "AB"), 0, 3), 4);
        // Without an upper bound every landmark counts: A{1,2,6} x B{3,7,8}
        // gives 3 + 3 + 2 = 8 ... positions after each A: A1 -> B3,B7,B8;
        // A2 -> B3,B7,B8; A6 -> B7,B8: 8 landmarks.
        assert_eq!(gap_constrained_count(s1, &pattern(&db, "AB"), 0, 100), 8);
    }

    #[test]
    fn interaction_patterns_match_the_paper() {
        // "AB has support 9, with 8 substrings in S1 ... captured" plus one
        // in S2.
        let db = example_db();
        assert_eq!(interaction_pattern_support(&db, &pattern(&db, "AB")), 9);
    }

    #[test]
    fn iterative_patterns_match_the_paper() {
        // "pattern AB has support 3" across the two sequences.
        let db = example_db();
        assert_eq!(iterative_pattern_support(&db, &pattern(&db, "AB")), 3);
        // CD occurs once per sequence under iterative semantics as well.
        assert_eq!(iterative_pattern_support(&db, &pattern(&db, "CD")), 2);
    }

    #[test]
    fn single_event_patterns_are_handled() {
        let db = example_db();
        let a = pattern(&db, "A");
        assert_eq!(sequence_count_support(&db, &a), 2);
        assert_eq!(interaction_pattern_support(&db, &a), 4);
        assert_eq!(iterative_pattern_support(&db, &a), 4);
        let s1 = db.sequence(0).unwrap();
        assert_eq!(gap_constrained_count(s1, &a, 0, 3), 3);
        assert_eq!(minimal_window_count(s1, &a), 3);
    }

    #[test]
    fn empty_pattern_has_zero_support_everywhere() {
        let db = example_db();
        let empty: Vec<EventId> = Vec::new();
        assert_eq!(episode_window_support(&db, &empty, 4), 0);
        assert_eq!(minimal_window_support(&db, &empty), 0);
        assert_eq!(gap_constrained_support(&db, &empty, 0, 3), 0);
        assert_eq!(interaction_pattern_support(&db, &empty), 0);
        assert_eq!(iterative_pattern_support(&db, &empty), 0);
    }

    #[test]
    fn longer_patterns_under_iterative_semantics() {
        // ABB in S1 = AABCDABB: starts at A1 (A1 ... next alphabet event at
        // 2 is A -> fail), A2 (B3 then next alphabet event is A6 -> fail),
        // A6 (B7, B8 -> success). Support 1.
        let db = example_db();
        assert_eq!(iterative_pattern_support(&db, &pattern(&db, "ABB")), 1);
    }

    #[test]
    fn window_helpers_behave() {
        let db = example_db();
        let s1 = db.sequence(0).unwrap();
        let ab = pattern(&db, "AB");
        assert!(window_contains(s1, 1, 4, &ab));
        assert!(!window_contains(s1, 3, 6, &ab));
        assert!(window_embeds_with_fixed_ends(s1, 6, 7, &ab));
        assert!(!window_embeds_with_fixed_ends(s1, 3, 7, &ab));
        assert_eq!(latest_start_for_end(s1, &ab, 7), Some(6));
        assert_eq!(latest_start_for_end(s1, &ab, 3), Some(2));
        assert_eq!(latest_start_for_end(s1, &ab, 4), None);
    }
}
