//! SPAM-style sequential pattern mining with vertical position bitmaps
//! (Ayres, Flannick, Gehrke & Yiu, KDD 2002).
//!
//! SPAM is cited by the paper as one of the classical sequential pattern
//! miners it builds on top of (reference \[18\]). It mines the same patterns
//! as PrefixSpan — support is the number of sequences containing the pattern
//! as a gapped subsequence — but represents intermediate state as *vertical
//! bitmaps*: for each pattern and each sequence, a bitmap over sequence
//! positions marking where the pattern's last event can be matched.
//!
//! The sequence-extension step ("S-step") transforms a bitmap so that all
//! bits strictly after the first set bit are set, then intersects with the
//! extending event's bitmap. The crate implements the bitmap substrate in
//! [`PositionBitmap`] and the miner in [`mine_sequential_spam`]; tests check
//! it against the PrefixSpan implementation pattern for pattern.

use seqdb::{EventId, SequenceDatabase};

use crate::prefixspan::{SequentialConfig, SequentialPattern};

/// A per-sequence position bitmap (1-based positions, bit `p - 1` set when
/// position `p` matches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositionBitmap {
    words: Vec<u64>,
    len: usize,
}

impl PositionBitmap {
    /// An empty bitmap over a sequence of `len` positions.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of positions the bitmap covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets the bit of 1-based position `pos`.
    pub fn set(&mut self, pos: usize) {
        assert!(pos >= 1 && pos <= self.len, "position out of range");
        let idx = pos - 1;
        self.words[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Tests the bit of 1-based position `pos`.
    pub fn get(&self, pos: usize) -> bool {
        if pos == 0 || pos > self.len {
            return false;
        }
        let idx = pos - 1;
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The smallest 1-based set position, if any.
    pub fn first_set(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize + 1);
            }
        }
        None
    }

    /// Bitwise AND with another bitmap of the same length.
    pub fn and(&self, other: &PositionBitmap) -> PositionBitmap {
        assert_eq!(self.len, other.len, "bitmap lengths differ");
        PositionBitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// The SPAM S-step transform: a bitmap with every position strictly
    /// greater than the first set position of `self` set (and nothing set
    /// when `self` is empty).
    pub fn s_step(&self) -> PositionBitmap {
        let mut result = PositionBitmap::new(self.len);
        if let Some(first) = self.first_set() {
            for pos in (first + 1)..=self.len {
                result.set(pos);
            }
        }
        result
    }
}

/// The vertical representation of a database: for every event, one
/// [`PositionBitmap`] per sequence.
#[derive(Debug, Clone)]
pub struct VerticalDatabase {
    /// `bitmaps[event][sequence]`.
    bitmaps: Vec<Vec<PositionBitmap>>,
    num_sequences: usize,
}

impl VerticalDatabase {
    /// Builds the vertical bitmaps of `db`.
    pub fn build(db: &SequenceDatabase) -> Self {
        let num_events = db.catalog().len();
        let num_sequences = db.num_sequences();
        let mut bitmaps: Vec<Vec<PositionBitmap>> = (0..num_events)
            .map(|_| {
                db.sequences()
                    .map(|s| PositionBitmap::new(s.len()))
                    .collect()
            })
            .collect();
        for (seq_idx, sequence) in db.sequences().enumerate() {
            for (pos, event) in sequence.iter_positions() {
                bitmaps[event.index()][seq_idx].set(pos);
            }
        }
        Self {
            bitmaps,
            num_sequences,
        }
    }

    /// The bitmaps of one event (indexed by sequence).
    pub fn event(&self, event: EventId) -> &[PositionBitmap] {
        &self.bitmaps[event.index()]
    }

    /// Number of sequences.
    pub fn num_sequences(&self) -> usize {
        self.num_sequences
    }

    /// The sequence-count support of a pattern bitmap set (number of
    /// sequences whose bitmap is non-empty).
    pub fn support(pattern_bitmaps: &[PositionBitmap]) -> u64 {
        pattern_bitmaps.iter().filter(|b| !b.is_empty()).count() as u64
    }

    /// The S-step extension of a pattern's bitmaps with `event`.
    pub fn extend(
        &self,
        pattern_bitmaps: &[PositionBitmap],
        event: EventId,
    ) -> Vec<PositionBitmap> {
        pattern_bitmaps
            .iter()
            .zip(self.event(event))
            .map(|(p, e)| p.s_step().and(e))
            .collect()
    }
}

/// Mines all frequent sequential patterns (sequence-count support) with the
/// SPAM bitmap algorithm. The output agrees with
/// [`crate::prefixspan::mine_sequential`]; only the internal representation
/// differs.
pub fn mine_sequential_spam(
    db: &SequenceDatabase,
    config: &SequentialConfig,
) -> Vec<SequentialPattern> {
    let vertical = VerticalDatabase::build(db);
    let min_sup = config.min_sup.max(1);
    let frequent_events: Vec<EventId> = db
        .catalog()
        .ids()
        .filter(|&e| VerticalDatabase::support(vertical.event(e)) >= min_sup)
        .collect();
    let mut result = Vec::new();
    let mut truncated = false;
    for &event in &frequent_events {
        if truncated {
            break;
        }
        descend(
            &vertical,
            config,
            &frequent_events,
            &[event],
            vertical.event(event),
            &mut result,
            &mut truncated,
        );
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn descend(
    vertical: &VerticalDatabase,
    config: &SequentialConfig,
    frequent_events: &[EventId],
    pattern: &[EventId],
    bitmaps: &[PositionBitmap],
    result: &mut Vec<SequentialPattern>,
    truncated: &mut bool,
) {
    let support = VerticalDatabase::support(bitmaps);
    if support < config.min_sup.max(1) {
        return;
    }
    result.push(SequentialPattern {
        events: pattern.to_vec(),
        support,
    });
    if let Some(cap) = config.max_patterns {
        if result.len() >= cap {
            *truncated = true;
            return;
        }
    }
    if config
        .max_pattern_length
        .is_some_and(|max| pattern.len() >= max)
    {
        return;
    }
    for &event in frequent_events {
        if *truncated {
            return;
        }
        let extended = vertical.extend(bitmaps, event);
        let mut grown = pattern.to_vec();
        grown.push(event);
        descend(
            vertical,
            config,
            frequent_events,
            &grown,
            &extended,
            result,
            truncated,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefixspan::mine_sequential;
    use std::collections::BTreeMap;

    fn pattern_map(patterns: &[SequentialPattern]) -> BTreeMap<Vec<EventId>, u64> {
        patterns
            .iter()
            .map(|p| (p.events.clone(), p.support))
            .collect()
    }

    #[test]
    fn bitmap_basics() {
        let mut b = PositionBitmap::new(130);
        assert!(b.is_empty());
        assert_eq!(b.first_set(), None);
        b.set(1);
        b.set(64);
        b.set(65);
        b.set(130);
        assert_eq!(b.count(), 4);
        assert!(b.get(64) && b.get(65) && b.get(130));
        assert!(!b.get(2) && !b.get(131));
        assert_eq!(b.first_set(), Some(1));
        assert_eq!(b.len(), 130);
    }

    #[test]
    #[should_panic(expected = "position out of range")]
    fn setting_out_of_range_positions_panics() {
        PositionBitmap::new(4).set(5);
    }

    #[test]
    fn s_step_sets_everything_after_the_first_match() {
        let mut b = PositionBitmap::new(8);
        b.set(3);
        b.set(6);
        let stepped = b.s_step();
        assert!(!stepped.get(1) && !stepped.get(2) && !stepped.get(3));
        assert!(stepped.get(4) && stepped.get(5) && stepped.get(8));
        assert!(PositionBitmap::new(5).s_step().is_empty());
    }

    #[test]
    fn and_intersects_bitmaps() {
        let mut a = PositionBitmap::new(70);
        let mut b = PositionBitmap::new(70);
        a.set(1);
        a.set(69);
        b.set(69);
        b.set(70);
        let c = a.and(&b);
        assert_eq!(c.count(), 1);
        assert!(c.get(69));
    }

    #[test]
    fn spam_agrees_with_prefixspan_on_example_databases() {
        for rows in [
            vec!["AABCDABB", "ABCD"],
            vec!["ABCABCA", "AABBCCC"],
            vec!["ABCACBDDB", "ACDBACADD"],
            vec!["ABAB", "BABA", "AABB", "BBAA"],
        ] {
            let db = SequenceDatabase::from_str_rows(&rows);
            for min_sup in [1, 2, 3] {
                let config = SequentialConfig::new(min_sup);
                let spam = pattern_map(&mine_sequential_spam(&db, &config));
                let prefix = pattern_map(&mine_sequential(&db, &config));
                assert_eq!(spam, prefix, "rows {rows:?} min_sup {min_sup}");
            }
        }
    }

    #[test]
    fn example_1_1_sequence_count_support_is_two_for_ab_and_cd() {
        let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
        let mined = mine_sequential_spam(&db, &SequentialConfig::new(2));
        let ab = db.pattern_from_str("AB").unwrap();
        let cd = db.pattern_from_str("CD").unwrap();
        let map = pattern_map(&mined);
        assert_eq!(map.get(&ab), Some(&2));
        assert_eq!(map.get(&cd), Some(&2));
    }

    #[test]
    fn caps_on_length_and_pattern_count_are_respected() {
        let db = SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"]);
        let capped =
            mine_sequential_spam(&db, &SequentialConfig::new(1).with_max_pattern_length(2));
        assert!(capped.iter().all(|p| p.events.len() <= 2));
        let truncated = mine_sequential_spam(&db, &SequentialConfig::new(1).with_max_patterns(4));
        assert_eq!(truncated.len(), 4);
    }

    #[test]
    fn empty_database_yields_no_patterns() {
        let db = SequenceDatabase::new();
        assert!(mine_sequential_spam(&db, &SequentialConfig::new(1)).is_empty());
    }
}
