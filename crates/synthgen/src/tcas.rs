//! TCAS-like program-trace generator.
//!
//! The TCAS dataset of Figure 4 consists of 1 578 execution traces of the
//! Traffic alert and Collision Avoidance System over 75 distinct events,
//! with an average trace length of 36 and a maximum of 70. The decisive
//! structural property for the evaluation is that traces come from a program
//! with branches and loops: the same short blocks of events repeat within a
//! trace, so the number of *all* frequent repetitive patterns explodes even
//! at high support thresholds while the closed set stays manageable
//! (CloGSgrow finishes at `min_sup = 1`, GSgrow does not finish at 886).
//!
//! The generator models a small procedure-call state machine: an entry
//! block, a main loop whose body is one of a few alternative branch blocks,
//! and an exit block.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use seqdb::{DatabaseBuilder, SequenceDatabase};

/// Configuration of the TCAS-like trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TcasConfig {
    /// Number of traces. The real dataset has 1 578.
    pub num_sequences: usize,
    /// Number of distinct events. The real dataset has 75.
    pub num_events: usize,
    /// Maximum trace length. The real dataset's maximum is 70.
    pub max_length: usize,
    /// Average number of loop iterations per trace.
    pub avg_loop_iterations: usize,
    /// Number of alternative branch blocks inside the loop body.
    pub num_branches: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TcasConfig {
    fn default() -> Self {
        Self {
            num_sequences: 1_578,
            num_events: 75,
            max_length: 70,
            avg_loop_iterations: 4,
            num_branches: 4,
            seed: 1_578,
        }
    }
}

impl TcasConfig {
    /// A scaled-down preset (sequence count divided by `factor`; the event
    /// alphabet and trace shape are preserved because they are already
    /// small).
    pub fn scaled_down(mut self, factor: usize) -> Self {
        self.num_sequences = (self.num_sequences / factor.max(1)).max(30);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the trace database.
    pub fn generate(&self) -> SequenceDatabase {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let num_events = self.num_events.max(12);

        // Partition the alphabet into blocks: entry, per-branch bodies,
        // a guard block executed every iteration, and exit.
        let entry_len = (num_events / 8).max(2);
        let exit_len = (num_events / 10).max(2);
        let guard_len = (num_events / 10).max(2);
        let branch_count = self.num_branches.max(1);
        let remaining = num_events.saturating_sub(entry_len + exit_len + guard_len);
        let branch_len = (remaining / branch_count).max(2);

        let mut next_event = 0usize;
        let mut take = |n: usize| {
            let block: Vec<usize> = (next_event..next_event + n).collect();
            next_event += n;
            block
        };
        let entry = take(entry_len);
        let guard = take(guard_len);
        let branches: Vec<Vec<usize>> = (0..branch_count).map(|_| take(branch_len)).collect();
        let exit = take(exit_len);

        let mut builder = DatabaseBuilder::new();
        for e in 0..num_events {
            builder.intern(&format!("fn{e}"));
        }
        for _ in 0..self.num_sequences {
            let mut events: Vec<usize> = Vec::with_capacity(self.max_length);
            events.extend_from_slice(&entry);
            let iterations = 1 + rng.gen_range(0..=self.avg_loop_iterations * 2);
            for _ in 0..iterations {
                if events.len() + guard.len() + branch_len + exit.len() > self.max_length {
                    break;
                }
                events.extend_from_slice(&guard);
                let branch = &branches[rng.gen_range(0..branches.len())];
                // Branch bodies occasionally skip trailing calls (early
                // return), so traces are not all identical.
                let keep = rng.gen_range((branch.len() / 2).max(1)..=branch.len());
                events.extend_from_slice(&branch[..keep]);
            }
            events.extend_from_slice(&exit);
            events.truncate(self.max_length);
            let labels: Vec<String> = events.iter().map(|e| format!("fn{e}")).collect();
            builder.push_tokens(labels.iter().map(String::as_str));
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TcasConfig {
        TcasConfig::default().scaled_down(16)
    }

    #[test]
    fn default_matches_published_summary_statistics() {
        let config = TcasConfig::default();
        assert_eq!(config.num_sequences, 1_578);
        assert_eq!(config.num_events, 75);
        assert_eq!(config.max_length, 70);
    }

    #[test]
    fn traces_respect_the_maximum_length_and_alphabet() {
        let db = small().generate();
        let stats = db.stats();
        assert!(stats.max_length <= 70);
        assert!(stats.num_events <= 75);
        assert!(stats.avg_length > 10.0, "avg {}", stats.avg_length);
        assert!(stats.avg_length < 70.0);
    }

    #[test]
    fn loops_produce_within_trace_repetition() {
        let db = small().generate();
        // The guard block runs once per loop iteration, so most traces
        // repeat its first event at least twice.
        let repeated = db
            .sequences()
            .filter(|s| {
                let mut counts = std::collections::HashMap::new();
                for e in s.iter_events() {
                    *counts.entry(e).or_insert(0usize) += 1;
                }
                counts.values().any(|&c| c >= 2)
            })
            .count();
        assert!(
            repeated * 10 >= db.num_sequences() * 6,
            "expected >=60% of traces to contain repetition, got {repeated}/{}",
            db.num_sequences()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(small().generate(), small().generate());
        assert_ne!(small().generate(), small().with_seed(4242).generate());
    }

    #[test]
    fn every_trace_starts_with_the_entry_block_and_ends_in_the_exit_block() {
        let db = small().generate();
        let entry_first = db.catalog().id("fn0").unwrap();
        for seq in db.sequences() {
            assert_eq!(seq.at(1), Some(entry_first));
        }
    }
}
