//! Shared sampling helpers for the generators.

use rand::rngs::StdRng;
use rand::Rng;

/// A discrete sampler over `0..n` with Zipf-like weights `1 / (rank + 1)^s`.
///
/// Event popularity in clickstreams and program traces is highly skewed;
/// a Zipf distribution is the standard model for that skew.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` items with exponent `s` (`s = 0` is
    /// uniform; larger `s` is more skewed).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one item");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Self { cumulative }
    }

    /// Draws one item index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.gen_range(0.0..total);
        self.cumulative
            .partition_point(|&c| c < x)
            .min(self.cumulative.len() - 1)
    }

    /// Number of items.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }
}

/// Samples a sequence length with the given mean from a geometric-like
/// distribution, clamped to `[min, max]`.
///
/// The QUEST generator uses a Poisson around the mean; a clamped geometric
/// mixture gives the same "most sequences near the mean, a few longer" shape
/// without needing a Poisson sampler dependency.
pub fn sample_length(rng: &mut StdRng, mean: f64, min: usize, max: usize) -> usize {
    debug_assert!(min <= max);
    // Sum of two uniform draws around the mean gives a triangular
    // distribution centred at `mean`, then add an exponential-ish tail.
    let base = rng.gen_range(0.5..1.0) * mean + rng.gen_range(0.0..0.5) * mean;
    let tail = if rng.gen_bool(0.1) {
        rng.gen_range(0.0..mean)
    } else {
        0.0
    };
    // Sign loss is impossible: base and tail are sums of non-negative draws.
    #[allow(clippy::cast_sign_loss)]
    ((base + tail).round() as usize).clamp(min, max)
}

/// Samples a heavy-tailed length: with probability `1 - p_tail` a short
/// length in `[min, short_max]`, otherwise a length up to `max` with a
/// decreasing density (used by the Gazelle-like generator where the average
/// length is 3 but the maximum is 651).
pub fn sample_heavy_tail_length(
    rng: &mut StdRng,
    min: usize,
    short_max: usize,
    max: usize,
    p_tail: f64,
) -> usize {
    if rng.gen_bool(p_tail) && max > short_max {
        // Quadratic skew towards the lower end of the tail.
        let u: f64 = rng.gen_range(0.0..1.0);
        let span = (max - short_max) as f64;
        // Sign loss is impossible: u and span are non-negative.
        #[allow(clippy::cast_sign_loss)]
        let tail = (u * u * span).round() as usize;
        short_max + tail
    } else {
        rng.gen_range(min..=short_max.max(min))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_sampler_prefers_low_ranks() {
        let mut rng = StdRng::seed_from_u64(7);
        let sampler = ZipfSampler::new(100, 1.0);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50]);
        assert!(counts[0] > counts[99]);
        assert_eq!(sampler.len(), 100);
    }

    #[test]
    fn zipf_with_zero_exponent_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let sampler = ZipfSampler::new(4, 0.0);
        let mut counts = vec![0usize; 4];
        for _ in 0..40_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_500.0, "counts {counts:?}");
        }
    }

    #[test]
    fn sample_length_respects_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0usize;
        let n = 5_000;
        for _ in 0..n {
            let len = sample_length(&mut rng, 20.0, 1, 100);
            assert!((1..=100).contains(&len));
            total += len;
        }
        let mean = total as f64 / f64::from(n);
        assert!((mean - 20.0).abs() < 5.0, "mean = {mean}");
    }

    #[test]
    fn heavy_tail_length_hits_the_tail_sometimes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_tail = false;
        for _ in 0..5_000 {
            let len = sample_heavy_tail_length(&mut rng, 1, 4, 651, 0.02);
            assert!((1..=651).contains(&len));
            if len > 50 {
                saw_tail = true;
            }
        }
        assert!(saw_tail, "the tail should be reachable");
    }
}
