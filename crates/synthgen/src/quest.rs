//! IBM QUEST-style synthetic sequence generator.
//!
//! The paper's synthetic datasets are produced by the IBM data generator of
//! Agrawal & Srikant with four parameters: `D` — number of sequences (in
//! thousands), `C` — average number of events per sequence, `N` — number of
//! distinct events (in thousands), and `S` — average length of the maximal
//! potentially-frequent sequences embedded in the data (e.g.
//! `D5C20N10S20`). This module re-implements that generation scheme from
//! scratch:
//!
//! 1. a pool of "maximal potential patterns" is drawn (lengths around `S`,
//!    events drawn from a Zipf-skewed alphabet, patterns partially derived
//!    from one another so that they share sub-patterns),
//! 2. each sequence is assembled by embedding one or more patterns (with
//!    gaps, noise events and occasional within-sequence repetition) until a
//!    target length around `C` is reached.
//!
//! The within-sequence repetition knob is what makes the data interesting
//! for *repetitive* gapped-subsequence mining: the same pattern instance can
//! occur several times in one sequence, exactly the behaviour the paper's
//! support definition is designed to capture.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use seqdb::{DatabaseBuilder, SequenceDatabase};

use crate::util::{sample_length, ZipfSampler};

/// Configuration of the QUEST-style generator.
#[derive(Debug, Clone, PartialEq)]
pub struct QuestConfig {
    /// Number of sequences (`D`, absolute — not thousands).
    pub num_sequences: usize,
    /// Average number of events per sequence (`C`).
    pub avg_sequence_length: usize,
    /// Number of distinct events (`N`, absolute — not thousands).
    pub num_events: usize,
    /// Average length of the embedded maximal patterns (`S`).
    pub avg_pattern_length: usize,
    /// Size of the pool of maximal potential patterns (QUEST's `NS`
    /// parameter; 100–5000 in the original generator).
    pub num_patterns: usize,
    /// Probability that an embedded pattern is immediately embedded again
    /// (producing within-sequence repetition).
    pub repetition_probability: f64,
    /// Fraction of noise events interleaved between pattern events.
    pub noise_ratio: f64,
    /// Zipf exponent of the event-popularity distribution.
    pub event_skew: f64,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
}

impl Default for QuestConfig {
    fn default() -> Self {
        Self {
            num_sequences: 1_000,
            avg_sequence_length: 20,
            num_events: 1_000,
            avg_pattern_length: 8,
            num_patterns: 200,
            repetition_probability: 0.35,
            noise_ratio: 0.25,
            event_skew: 0.8,
            seed: 0x1CDE_2009,
        }
    }
}

impl QuestConfig {
    /// The paper's parameter notation: `D` and `N` in thousands, `C` and `S`
    /// as-is. `QuestConfig::paper(5, 20, 10, 20)` is the `D5C20N10S20`
    /// dataset of Figure 2.
    pub fn paper(d_thousands: usize, c: usize, n_thousands: usize, s: usize) -> Self {
        Self {
            num_sequences: d_thousands * 1_000,
            avg_sequence_length: c,
            num_events: n_thousands * 1_000,
            avg_pattern_length: s,
            ..Self::default()
        }
    }

    /// A proportionally scaled-down version of the same workload: sequence
    /// and event counts are divided by `factor` (lengths are preserved).
    /// Used by the default experiment presets so the whole harness runs in
    /// minutes while keeping the qualitative shape of the figures.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        let factor = factor.max(1);
        self.num_sequences = (self.num_sequences / factor).max(10);
        self.num_events = (self.num_events / factor).max(20);
        self.num_patterns = (self.num_patterns / factor.min(4)).max(20);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The canonical dataset name in the paper's notation, e.g.
    /// `D5C20N10S20` (rounded to the nearest thousand for `D` and `N`).
    pub fn name(&self) -> String {
        format!(
            "D{}C{}N{}S{}",
            (self.num_sequences + 500) / 1000,
            self.avg_sequence_length,
            (self.num_events + 500) / 1000,
            self.avg_pattern_length
        )
    }

    /// Generates the database.
    pub fn generate(&self) -> SequenceDatabase {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let num_events = self.num_events.max(2);
        let event_sampler = ZipfSampler::new(num_events, self.event_skew);

        // 1. Pattern pool. Later patterns reuse a prefix of an earlier one
        //    with some probability, mimicking QUEST's "corruption" step that
        //    makes patterns share structure.
        let mut pool: Vec<Vec<usize>> = Vec::with_capacity(self.num_patterns.max(1));
        for _ in 0..self.num_patterns.max(1) {
            let len = sample_length(
                &mut rng,
                self.avg_pattern_length.max(2) as f64,
                2,
                (self.avg_pattern_length.max(2)) * 3,
            );
            let mut pattern = Vec::with_capacity(len);
            if !pool.is_empty() && rng.gen_bool(0.4) {
                let parent: &Vec<usize> = &pool[rng.gen_range(0..pool.len())];
                let keep = rng.gen_range(1..=parent.len().min(len));
                pattern.extend_from_slice(&parent[..keep]);
            }
            while pattern.len() < len {
                pattern.push(event_sampler.sample(&mut rng));
            }
            pool.push(pattern);
        }
        // Pattern popularity is also skewed.
        let pattern_sampler = ZipfSampler::new(pool.len(), 0.7);

        // 2. Sequences.
        let mut builder = DatabaseBuilder::new();
        // Pre-intern all event labels so ids are dense and stable.
        for e in 0..num_events {
            builder.intern(&format!("e{e}"));
        }
        for _ in 0..self.num_sequences {
            let target = sample_length(
                &mut rng,
                self.avg_sequence_length.max(1) as f64,
                1,
                self.avg_sequence_length.max(1) * 4,
            );
            let mut events: Vec<usize> = Vec::with_capacity(target + 8);
            while events.len() < target {
                let pattern = &pool[pattern_sampler.sample(&mut rng)];
                let mut embeds = 1;
                while rng.gen_bool(self.repetition_probability) && embeds < 4 {
                    embeds += 1;
                }
                for _ in 0..embeds {
                    for &event in pattern {
                        if rng.gen_bool(self.noise_ratio) {
                            events.push(event_sampler.sample(&mut rng));
                        }
                        events.push(event);
                        if events.len() >= target + 8 {
                            break;
                        }
                    }
                    if events.len() >= target + 8 {
                        break;
                    }
                }
            }
            events.truncate(target.max(1));
            let labels: Vec<String> = events.iter().map(|e| format!("e{e}")).collect();
            builder.push_tokens(labels.iter().map(String::as_str));
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_for_a_fixed_seed() {
        let config = QuestConfig {
            num_sequences: 50,
            avg_sequence_length: 15,
            num_events: 100,
            avg_pattern_length: 5,
            num_patterns: 20,
            ..QuestConfig::default()
        };
        let a = config.generate();
        let b = config.generate();
        assert_eq!(a, b);
        let c = config.clone().with_seed(99).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn statistics_roughly_match_the_configuration() {
        let config = QuestConfig {
            num_sequences: 300,
            avg_sequence_length: 20,
            num_events: 200,
            avg_pattern_length: 6,
            num_patterns: 40,
            ..QuestConfig::default()
        };
        let db = config.generate();
        let stats = db.stats();
        assert_eq!(stats.num_sequences, 300);
        assert!(stats.num_events <= 200);
        assert!(
            (stats.avg_length - 20.0).abs() < 6.0,
            "avg length {} too far from 20",
            stats.avg_length
        );
        assert!(stats.max_length <= 80);
    }

    #[test]
    fn paper_notation_builds_the_figure_2_name() {
        let config = QuestConfig::paper(5, 20, 10, 20);
        assert_eq!(config.name(), "D5C20N10S20");
        assert_eq!(config.num_sequences, 5_000);
        assert_eq!(config.num_events, 10_000);
    }

    #[test]
    fn scaled_down_divides_sizes_but_keeps_lengths() {
        let config = QuestConfig::paper(5, 20, 10, 20).scaled_down(50);
        assert_eq!(config.num_sequences, 100);
        assert_eq!(config.num_events, 200);
        assert_eq!(config.avg_sequence_length, 20);
        assert_eq!(config.avg_pattern_length, 20);
    }

    #[test]
    fn sequences_repeat_patterns_within_themselves() {
        // The whole point of the workload: some event must occur more than
        // once within a single sequence reasonably often.
        let config = QuestConfig {
            num_sequences: 100,
            avg_sequence_length: 30,
            num_events: 50,
            avg_pattern_length: 5,
            num_patterns: 10,
            repetition_probability: 0.5,
            ..QuestConfig::default()
        };
        let db = config.generate();
        let repeated = db
            .sequences()
            .filter(|s| {
                let mut counts = std::collections::HashMap::new();
                for e in s.iter_events() {
                    *counts.entry(e).or_insert(0usize) += 1;
                }
                counts.values().any(|&c| c >= 2)
            })
            .count();
        assert!(
            repeated > 50,
            "expected most sequences to contain repeated events, got {repeated}/100"
        );
    }

    #[test]
    fn tiny_configurations_do_not_panic() {
        let config = QuestConfig {
            num_sequences: 3,
            avg_sequence_length: 1,
            num_events: 2,
            avg_pattern_length: 2,
            num_patterns: 1,
            ..QuestConfig::default()
        };
        let db = config.generate();
        assert_eq!(db.num_sequences(), 3);
        assert!(db.total_length() >= 3);
    }
}
