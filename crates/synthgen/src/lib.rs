//! # synthgen — synthetic workloads for the ICDE'09 evaluation
//!
//! The paper evaluates GSgrow/CloGSgrow on one synthetic and three real
//! datasets. The real datasets (the KDD-Cup 2000 *Gazelle* clickstream, the
//! *TCAS* software traces, and the JBoss transaction-component traces of the
//! case study) are not redistributable, so this crate provides generators
//! that reproduce their **published summary statistics and structural
//! properties** — the properties the evaluation's qualitative conclusions
//! depend on (see DESIGN.md, "Substitutions").
//!
//! * [`quest`] — an IBM QUEST-style sequence generator with the paper's
//!   parameter vocabulary (`D`, `C`, `N`, `S`),
//! * [`gazelle`] — a heavy-tailed clickstream generator,
//! * [`tcas`] — a branching-and-loop program-trace generator,
//! * [`jboss`] — a transaction-component trace generator with named events
//!   for the case study,
//! * [`labeled`] — a labeled buggy/normal trace generator for the
//!   classification pipeline of the `rgs-features` crate.
//!
//! All generators are deterministic given their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gazelle;
pub mod jboss;
pub mod labeled;
pub mod quest;
pub mod tcas;
mod util;

pub use gazelle::GazelleConfig;
pub use jboss::JbossConfig;
pub use labeled::LabeledTraceConfig;
pub use quest::QuestConfig;
pub use tcas::TcasConfig;
