//! Gazelle-like clickstream generator.
//!
//! The Gazelle dataset (KDD Cup 2000) used in Figure 3 of the paper is a
//! web clickstream benchmark: 29 369 sequences over 1 423 distinct events
//! with an *average* length of only 3, but a heavy tail of long sessions
//! (maximum length 651) in which patterns repeat many times. The original
//! data is not redistributable; this generator reproduces those summary
//! statistics and the structural property that matters for the evaluation —
//! a few very long, loop-heavy sessions dominate the repetition counts while
//! most sessions are trivially short.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use seqdb::{DatabaseBuilder, SequenceDatabase};

use crate::util::{sample_heavy_tail_length, ZipfSampler};

/// Configuration of the Gazelle-like clickstream generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GazelleConfig {
    /// Number of sessions (sequences). The real dataset has 29 369.
    pub num_sequences: usize,
    /// Number of distinct page events. The real dataset has 1 423.
    pub num_events: usize,
    /// Maximum session length. The real dataset's maximum is 651.
    pub max_length: usize,
    /// Typical (short) session length bound; most sessions fall in
    /// `1..=short_max`, giving an average close to the real dataset's 3.
    pub short_max: usize,
    /// Probability of a session being a long, loop-heavy tail session.
    pub tail_probability: f64,
    /// Zipf exponent of page popularity.
    pub event_skew: f64,
    /// Length of the navigation loop repeated inside tail sessions.
    pub loop_length: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GazelleConfig {
    fn default() -> Self {
        Self {
            num_sequences: 29_369,
            num_events: 1_423,
            max_length: 651,
            short_max: 4,
            tail_probability: 0.02,
            event_skew: 1.1,
            loop_length: 6,
            seed: 2000,
        }
    }
}

impl GazelleConfig {
    /// A proportionally scaled-down preset (sequence and event counts
    /// divided by `factor`, maximum length divided by `sqrt(factor)` so the
    /// tail remains much longer than the average).
    pub fn scaled_down(mut self, factor: usize) -> Self {
        let factor = factor.max(1);
        self.num_sequences = (self.num_sequences / factor).max(50);
        self.num_events = (self.num_events / factor).max(30);
        let shrink = (factor as f64).sqrt().max(1.0);
        // Sign loss is impossible: a positive length divided by sqrt(factor).
        #[allow(clippy::cast_sign_loss)]
        let shrunk = (self.max_length as f64 / shrink) as usize;
        self.max_length = shrunk.max(self.short_max * 8);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the clickstream database.
    pub fn generate(&self) -> SequenceDatabase {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let num_events = self.num_events.max(2);
        let page_sampler = ZipfSampler::new(num_events, self.event_skew);
        let mut builder = DatabaseBuilder::new();
        for e in 0..num_events {
            builder.intern(&format!("page{e}"));
        }
        for _ in 0..self.num_sequences {
            let length = sample_heavy_tail_length(
                &mut rng,
                1,
                self.short_max,
                self.max_length,
                self.tail_probability,
            );
            let mut events: Vec<usize> = Vec::with_capacity(length);
            if length > self.short_max * 4 {
                // Tail session: a small navigation loop visited over and
                // over with occasional detours — the source of repetition.
                let loop_len = self.loop_length.clamp(2, 12);
                let nav_loop: Vec<usize> = (0..loop_len)
                    .map(|_| page_sampler.sample(&mut rng))
                    .collect();
                while events.len() < length {
                    for &page in &nav_loop {
                        events.push(page);
                        if rng.gen_bool(0.15) {
                            events.push(page_sampler.sample(&mut rng));
                        }
                        if events.len() >= length {
                            break;
                        }
                    }
                }
            } else {
                for _ in 0..length {
                    events.push(page_sampler.sample(&mut rng));
                }
            }
            events.truncate(length);
            let labels: Vec<String> = events.iter().map(|e| format!("page{e}")).collect();
            builder.push_tokens(labels.iter().map(String::as_str));
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GazelleConfig {
        GazelleConfig::default().scaled_down(40)
    }

    #[test]
    fn default_matches_published_summary_statistics() {
        let config = GazelleConfig::default();
        assert_eq!(config.num_sequences, 29_369);
        assert_eq!(config.num_events, 1_423);
        assert_eq!(config.max_length, 651);
    }

    #[test]
    fn generated_data_is_heavy_tailed_with_small_average() {
        let db = small_config().generate();
        let stats = db.stats();
        assert_eq!(stats.num_sequences, small_config().num_sequences);
        assert!(
            stats.avg_length < 10.0,
            "average length should stay small, got {}",
            stats.avg_length
        );
        assert!(
            stats.max_length > 30,
            "a long tail session should exist, got max {}",
            stats.max_length
        );
    }

    #[test]
    fn tail_sessions_contain_repetition() {
        let db = small_config().with_seed(5).generate();
        let longest = db
            .sequences()
            .max_by_key(|s| s.len())
            .expect("non-empty database");
        let mut counts = std::collections::HashMap::new();
        for e in longest.iter_events() {
            *counts.entry(e).or_insert(0usize) += 1;
        }
        let max_repeat = counts.values().copied().max().unwrap_or(0);
        assert!(
            max_repeat >= 5,
            "the longest session should repeat some page many times, got {max_repeat}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_config().generate();
        let b = small_config().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn scaling_preserves_the_shape() {
        let scaled = GazelleConfig::default().scaled_down(100);
        assert!(scaled.num_sequences >= 50);
        assert!(scaled.num_events >= 30);
        assert!(scaled.max_length >= scaled.short_max * 8);
    }
}
