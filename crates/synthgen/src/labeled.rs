//! Labeled program-trace generator for the classification experiments.
//!
//! The paper's future-work paragraph proposes using repetitive gapped
//! subsequences as features for classifying sequences, naming
//! "(buggy/un-buggy) program execution traces" as the motivating example.
//! This generator produces exactly that kind of labeled corpus: traces of a
//! small resource-handling program in two behavioural classes that share
//! most of their vocabulary and differ mainly in *how often* certain
//! patterns repeat within a trace — the regime where repetitive support is
//! informative and plain sequence-count support is not.
//!
//! * **normal** traces: repeated `acquire → use → release` cycles with
//!   occasional interleaved logging, every acquisition matched by a release;
//! * **buggy** traces: the same cycles, but the release is skipped with some
//!   probability (a leak) and an `error → retry` pair repeats in bursts.
//!
//! Both classes contain every event at least occasionally, so presence-based
//! features cannot separate them reliably; the per-sequence repetition
//! counts of patterns such as `acquire release` and `error retry` can.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use seqdb::{DatabaseBuilder, SequenceDatabase};

/// Class label of the normal traces.
pub const NORMAL_LABEL: &str = "normal";
/// Class label of the buggy traces.
pub const BUGGY_LABEL: &str = "buggy";

/// Configuration of the labeled trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledTraceConfig {
    /// Number of traces per class.
    pub traces_per_class: usize,
    /// Average number of resource cycles per trace.
    pub avg_cycles: usize,
    /// Probability that a buggy trace skips a `release` (the leak).
    pub leak_probability: f64,
    /// Probability that a buggy cycle is followed by an `error retry` burst.
    pub error_burst_probability: f64,
    /// Probability that a *normal* trace still exhibits one isolated error
    /// (noise that keeps the classes from being trivially separable by
    /// presence).
    pub benign_error_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LabeledTraceConfig {
    fn default() -> Self {
        Self {
            traces_per_class: 60,
            avg_cycles: 8,
            leak_probability: 0.4,
            error_burst_probability: 0.5,
            benign_error_probability: 0.15,
            seed: 2_009,
        }
    }
}

impl LabeledTraceConfig {
    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of traces per class.
    pub fn with_traces_per_class(mut self, n: usize) -> Self {
        self.traces_per_class = n;
        self
    }

    /// Generates the corpus: a sequence database plus one label
    /// ([`NORMAL_LABEL`] or [`BUGGY_LABEL`]) per sequence, index-aligned.
    pub fn generate(&self) -> (SequenceDatabase, Vec<String>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = DatabaseBuilder::new();
        // Fix the catalog order so event ids are stable across runs.
        for label in [
            "start", "acquire", "use", "release", "log", "error", "retry", "flush", "stop",
        ] {
            builder.intern(label);
        }
        let mut labels = Vec::with_capacity(self.traces_per_class * 2);
        for class in [NORMAL_LABEL, BUGGY_LABEL] {
            for _ in 0..self.traces_per_class {
                let trace = self.one_trace(&mut rng, class == BUGGY_LABEL);
                builder.push_tokens(trace.iter().copied());
                labels.push(class.to_string());
            }
        }
        (builder.finish(), labels)
    }

    fn one_trace(&self, rng: &mut StdRng, buggy: bool) -> Vec<&'static str> {
        let mut trace = vec!["start"];
        let cycles = 1 + rng.gen_range(0..=self.avg_cycles * 2);
        for _ in 0..cycles {
            trace.push("acquire");
            let uses = 1 + rng.gen_range(0..3);
            #[allow(clippy::same_item_push)] // each push may be followed by a log entry
            for _ in 0..uses {
                trace.push("use");
                if rng.gen_bool(0.3) {
                    trace.push("log");
                }
            }
            if buggy && rng.gen_bool(self.leak_probability) {
                // Leak: the release is skipped.
            } else {
                trace.push("release");
            }
            if buggy && rng.gen_bool(self.error_burst_probability) {
                let burst = 1 + rng.gen_range(0..3);
                for _ in 0..burst {
                    trace.push("error");
                    trace.push("retry");
                }
            } else if !buggy && rng.gen_bool(self.benign_error_probability) {
                trace.push("error");
                trace.push("retry");
            }
        }
        if rng.gen_bool(0.5) {
            trace.push("flush");
        }
        trace.push("stop");
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LabeledTraceConfig {
        LabeledTraceConfig {
            traces_per_class: 25,
            ..LabeledTraceConfig::default()
        }
    }

    #[test]
    fn generates_one_label_per_sequence_with_both_classes() {
        let (db, labels) = small().generate();
        assert_eq!(db.num_sequences(), labels.len());
        assert_eq!(db.num_sequences(), 50);
        assert_eq!(labels.iter().filter(|l| *l == NORMAL_LABEL).count(), 25);
        assert_eq!(labels.iter().filter(|l| *l == BUGGY_LABEL).count(), 25);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a, b);
        let c = small().with_seed(99).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn every_trace_is_bracketed_by_start_and_stop() {
        let (db, _) = small().generate();
        let start = db.catalog().id("start").unwrap();
        let stop = db.catalog().id("stop").unwrap();
        for seq in db.sequences() {
            assert_eq!(seq.at(1), Some(start));
            assert_eq!(seq.at(seq.len()), Some(stop));
        }
    }

    #[test]
    fn buggy_traces_repeat_error_retry_more_often_than_normal_ones() {
        let (db, labels) = small().generate();
        let error = db.catalog().id("error").unwrap();
        let mean_errors = |class: &str| {
            let (total, count) = db
                .sequences()
                .zip(&labels)
                .filter(|(_, l)| l.as_str() == class)
                .fold((0usize, 0usize), |(t, c), (s, _)| {
                    (t + s.count_event(error), c + 1)
                });
            total as f64 / count as f64
        };
        assert!(
            mean_errors(BUGGY_LABEL) > mean_errors(NORMAL_LABEL) * 2.0,
            "buggy traces should repeat errors far more often ({} vs {})",
            mean_errors(BUGGY_LABEL),
            mean_errors(NORMAL_LABEL)
        );
    }

    #[test]
    fn both_classes_share_the_core_vocabulary() {
        // Presence of acquire/use/release alone must not separate the
        // classes; every trace of either class uses the core events.
        let (db, labels) = small().generate();
        let acquire = db.catalog().id("acquire").unwrap();
        for (seq, label) in db.sequences().zip(&labels) {
            assert!(
                seq.count_event(acquire) >= 1,
                "trace of class {label} lacks the shared vocabulary"
            );
        }
    }

    #[test]
    fn normal_traces_balance_acquire_and_release() {
        let (db, labels) = small().generate();
        let acquire = db.catalog().id("acquire").unwrap();
        let release = db.catalog().id("release").unwrap();
        for (seq, label) in db.sequences().zip(&labels) {
            if label == NORMAL_LABEL {
                assert_eq!(seq.count_event(acquire), seq.count_event(release));
            }
        }
    }
}
