//! JBoss-transaction-like trace generator for the case study (§IV-B).
//!
//! The case study mines traces collected from the transaction component of
//! the JBoss application server: 28 traces, 64 unique events, an average of
//! 91 events per trace and a maximum of 125. The headline findings are:
//!
//! * a long end-to-end behavioural pattern spanning connection set-up,
//!   transaction-manager set-up, transaction set-up, resource enlistment /
//!   execution, commit, and disposal is mined as *one* pattern because the
//!   repetitive-support semantics tolerates the repetition of the
//!   enlistment and commit blocks,
//! * the most frequent short pattern is the 2-event behaviour
//!   `lock → unlock`.
//!
//! This generator emits traces with exactly that block structure over a
//! catalog of 64 method-like event names, so the case-study experiment can
//! verify both findings on synthetic data. The original traces are not
//! publicly available.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use seqdb::{DatabaseBuilder, SequenceDatabase};

/// Configuration of the JBoss-like transaction trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct JbossConfig {
    /// Number of traces. The case study uses 28.
    pub num_sequences: usize,
    /// Maximum trace length. The case study's longest trace has 125 events.
    pub max_length: usize,
    /// Average number of resource-enlistment repetitions per transaction.
    pub avg_enlistments: usize,
    /// Probability that a trace contains a second transaction round
    /// (commit executed again before disposal).
    pub second_round_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for JbossConfig {
    fn default() -> Self {
        Self {
            num_sequences: 28,
            max_length: 125,
            avg_enlistments: 2,
            second_round_probability: 0.4,
            seed: 64,
        }
    }
}

/// The six semantic blocks of the transaction-component behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Block {
    /// Locating the transaction manager and opening the connection.
    ConnectionSetup,
    /// Transaction-manager instance set-up.
    TxManagerSetup,
    /// Transaction object creation and association with the thread.
    TransactionSetup,
    /// Resource enlistment and transaction execution (repeats).
    ResourceEnlistment,
    /// Commit protocol.
    Commit,
    /// Transaction disposal / release.
    Disposal,
}

impl JbossConfig {
    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The method-name-like event labels of one semantic block.
    pub fn block_events(block: Block) -> &'static [&'static str] {
        match block {
            Block::ConnectionSetup => &[
                "TransManLoc.getInstance",
                "TransManLoc.locate",
                "TransManLoc.tryJNDI",
                "TransManLoc.usePrivateAPI",
            ],
            Block::TxManagerSetup => &[
                "TxManager.getInstance",
                "TxManager.begin",
                "XidFactory.newXid",
                "XidFactory.getNextId",
                "XidImpl.getTrulyGlobalId",
            ],
            Block::TransactionSetup => &[
                "TransImpl.assocCurThd",
                "TransImpl.lock",
                "TransImpl.unlock",
                "TransImpl.getLocId",
                "XidImpl.getLocId",
                "LocId.hashCode",
                "TxManager.getTrans",
                "TransImpl.isDone",
                "TransImpl.getStatus",
            ],
            Block::ResourceEnlistment => &[
                "TxManager.getTrans",
                "TransImpl.isDone",
                "TransImpl.enlistResource",
                "TransImpl.lock",
                "TransImpl.createXidBranch",
                "XidFactory.newBranch",
                "TransImpl.unlock",
                "XidImpl.hashCode",
                "TransImpl.equals",
                "TransImpl.getLocIdVal",
                "XidImpl.getLocIdVal",
            ],
            Block::Commit => &[
                "TxManager.commit",
                "TransImpl.commit",
                "TransImpl.lock",
                "TransImpl.beforePrepare",
                "TransImpl.checkIntegrity",
                "TransImpl.checkBeforeStatus",
                "TransImpl.endResources",
                "TransImpl.unlock",
                "TransImpl.completeTrans",
                "TransImpl.cancelTimeout",
                "TransImpl.doAfterCompletion",
                "TransImpl.instanceDone",
            ],
            Block::Disposal => &[
                "TxManager.getInstance",
                "TxManager.releaseTransImpl",
                "TransImpl.getLocalId",
                "XidImpl.getLocalId",
                "LocalId.hashCode",
                "LocalId.equals",
                "TransImpl.unlock",
                "XidImpl.hashCode",
            ],
        }
    }

    /// Auxiliary events interleaved as noise (bookkeeping calls that the
    /// real component emits between blocks), bringing the catalog to 64
    /// distinct events.
    fn noise_events() -> &'static [&'static str] {
        &[
            "TransImpl.getCommitStrategy",
            "TransImpl.getRollbackOnly",
            "TransImpl.setRollbackOnly",
            "TxManager.suspend",
            "TxManager.resume",
            "TransImpl.registerSync",
            "TransImpl.notifySync",
            "XidImpl.toString",
            "XidFactory.recycle",
            "TransImpl.timeoutCheck",
            "TxManager.getStatus",
            "TransImpl.getGlobalId",
            "XidImpl.equals",
            "TransImpl.checkHeuristics",
            "TransImpl.forgetResources",
            "TxManager.setTransTimeout",
            "TransImpl.getTimeLeft",
            "TransImpl.checkWork",
            "TransImpl.delistResource",
            "TransImpl.beforeCompletion",
            "TransImpl.afterCompletion",
            "XidFactory.getBaseXid",
            "TransImpl.getResources",
            "TxManager.getTransCount",
        ]
    }

    /// Generates the trace database.
    pub fn generate(&self) -> SequenceDatabase {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = DatabaseBuilder::new();
        // Intern every event up front so the catalog is stable and complete.
        for block in [
            Block::ConnectionSetup,
            Block::TxManagerSetup,
            Block::TransactionSetup,
            Block::ResourceEnlistment,
            Block::Commit,
            Block::Disposal,
        ] {
            for &event in Self::block_events(block) {
                builder.intern(event);
            }
        }
        for &event in Self::noise_events() {
            builder.intern(event);
        }

        for _ in 0..self.num_sequences {
            let mut trace: Vec<&str> = Vec::with_capacity(self.max_length);
            let push_block = |trace: &mut Vec<&str>, block: Block, rng: &mut StdRng| {
                for &event in Self::block_events(block) {
                    trace.push(event);
                    if rng.gen_bool(0.08) {
                        let noise = Self::noise_events();
                        trace.push(noise[rng.gen_range(0..noise.len())]);
                    }
                }
            };
            push_block(&mut trace, Block::ConnectionSetup, &mut rng);
            push_block(&mut trace, Block::TxManagerSetup, &mut rng);
            push_block(&mut trace, Block::TransactionSetup, &mut rng);
            // Resource enlistment repeats: this is the behaviour the case
            // study highlights (several enlistments before one commit).
            let enlistments = 1 + rng.gen_range(0..=self.avg_enlistments * 2);
            for _ in 0..enlistments {
                push_block(&mut trace, Block::ResourceEnlistment, &mut rng);
            }
            push_block(&mut trace, Block::Commit, &mut rng);
            if rng.gen_bool(self.second_round_probability) {
                push_block(&mut trace, Block::Commit, &mut rng);
            }
            push_block(&mut trace, Block::Disposal, &mut rng);
            trace.truncate(self.max_length);
            builder.push_tokens(trace.iter().copied());
        }
        builder.finish()
    }

    /// The end-to-end behavioural pattern (one pass through all six blocks)
    /// as event labels — the ground truth the case-study experiment checks
    /// against the longest mined pattern.
    pub fn end_to_end_behaviour() -> Vec<&'static str> {
        let mut behaviour = Vec::new();
        for block in [
            Block::ConnectionSetup,
            Block::TxManagerSetup,
            Block::TransactionSetup,
            Block::ResourceEnlistment,
            Block::Commit,
            Block::Disposal,
        ] {
            behaviour.extend_from_slice(Self::block_events(block));
        }
        behaviour
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_the_case_study_cardinality() {
        let db = JbossConfig::default().generate();
        assert_eq!(db.num_sequences(), 28);
        assert_eq!(
            db.num_events(),
            64,
            "the case study reports 64 unique events"
        );
        let stats = db.stats();
        assert!(stats.max_length <= 125);
        assert!(
            stats.avg_length > 55.0 && stats.avg_length < 125.0,
            "avg length {} should be in the vicinity of the case study's 91",
            stats.avg_length
        );
    }

    #[test]
    fn lock_unlock_is_a_frequent_within_trace_behaviour() {
        let db = JbossConfig::default().generate();
        let lock = db.catalog().id("TransImpl.lock").unwrap();
        let unlock = db.catalog().id("TransImpl.unlock").unwrap();
        // Each trace contains several lock and unlock calls.
        for seq in db.sequences() {
            assert!(seq.count_event(lock) >= 2);
            assert!(seq.count_event(unlock) >= 2);
        }
    }

    #[test]
    fn every_trace_contains_the_end_to_end_behaviour_as_a_subsequence() {
        let db = JbossConfig::default().generate();
        let behaviour: Vec<_> = JbossConfig::end_to_end_behaviour()
            .iter()
            .map(|l| db.catalog().id(l).expect("label interned"))
            .collect();
        for (i, seq) in db.sequences().enumerate() {
            assert!(
                seq.contains_subsequence(&behaviour),
                "trace {i} misses the end-to-end behaviour"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            JbossConfig::default().generate(),
            JbossConfig::default().generate()
        );
        assert_ne!(
            JbossConfig::default().generate(),
            JbossConfig::default().with_seed(1).generate()
        );
    }

    #[test]
    fn enlistment_block_repeats_within_traces() {
        let db = JbossConfig::default().generate();
        let enlist = db.catalog().id("TransImpl.enlistResource").unwrap();
        let repeated = db
            .sequences()
            .filter(|s| s.count_event(enlist) >= 2)
            .count();
        assert!(
            repeated > 5,
            "several traces should enlist resources more than once, got {repeated}"
        );
    }
}
