//! # repetitive-gapped-mining — umbrella crate
//!
//! A from-scratch Rust reproduction of *"Efficient Mining of Closed
//! Repetitive Gapped Subsequences from a Sequence Database"* (Ding, Lo, Han
//! & Khoo, ICDE 2009).
//!
//! This crate re-exports the public API of the workspace members so that a
//! downstream user only needs one dependency:
//!
//! * [`seqdb`] — sequence database model, inverted event index, dataset I/O,
//! * [`core`] (crate `rgs-core`) — repetitive support, instance growth, the
//!   unified [`Miner`](core::Miner) engine (GSgrow, CloGSgrow, top-k,
//!   maximal, gap-constrained mining as composable options), streaming
//!   [`PatternSink`](core::PatternSink)s, case-study post-processing,
//! * [`synthgen`] — synthetic workload generators reproducing the paper's
//!   evaluation datasets,
//! * [`baselines`] — sequential-pattern miners (PrefixSpan, BIDE-style,
//!   CloSpan-lite, SPAM-style), serial episode miners, and the alternative
//!   support semantics of Table I,
//! * [`features`] (crate `rgs-features`) — per-sequence repetitive-support
//!   feature extraction, discriminative pattern selection, and sequence
//!   classification (the paper's future-work direction).
//!
//! # Example — the prepared two-phase flow
//!
//! Prepare the database once ([`PreparedDb`](core::PreparedDb) owns the
//! catalog, the inverted index, and the frequent-event counts), then run
//! any number of queries against the snapshot through the
//! [`Miner`](core::Miner) builder: mode (all/closed/maximal/top-k),
//! gap/window constraints, ranking, caps, and sequential/parallel
//! execution are orthogonal options that compose freely.
//!
//! ```
//! use repetitive_gapped_mining::prelude::*;
//!
//! // Example 1.1 of the paper: two customers' purchase histories.
//! let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
//!
//! // Phase 1: prepare once.
//! let prepared = PreparedDb::new(&db);
//!
//! // Phase 2: query many times, borrowing the snapshot.
//! let closed = prepared.miner().min_sup(2).mode(Mode::Closed).run();
//! assert!(!closed.is_empty());
//!
//! // Parallel execution is bit-identical to sequential:
//! let parallel = prepared
//!     .miner()
//!     .min_sup(2)
//!     .mode(Mode::Closed)
//!     .threads(4)
//!     .run();
//! assert_eq!(closed.patterns, parallel.patterns);
//!
//! // ...and so is a sharded preparation (sequence-boundary partition,
//! // per-shard indexes built in parallel, shard-routed queries):
//! let sharded = PreparedDb::new_sharded(&db, 2, 2);
//! assert_eq!(sharded.shard_count(), 2);
//! let from_shards = sharded.miner().min_sup(2).mode(Mode::Closed).threads(4).run();
//! assert_eq!(closed.patterns, from_shards.patterns);
//!
//! // Pull-based consumption composes with iterator adapters:
//! let session = prepared.miner().min_sup(2).mode(Mode::All).session();
//! let first = session.stream().next().expect("at least one pattern");
//! assert!(first.support >= 2);
//!
//! // Repetitive support distinguishes AB (repeats within S1) from CD.
//! let ab = db.pattern_from_str("AB").unwrap();
//! let cd = db.pattern_from_str("CD").unwrap();
//! assert_eq!(repetitive_support(&db, &ab), 4);
//! assert_eq!(repetitive_support(&db, &cd), 2);
//!
//! // Combinations the legacy API could not express compose for free:
//! let constrained_topk = prepared
//!     .miner()
//!     .min_sup(1)
//!     .mode(Mode::Closed)
//!     .constraints(GapConstraints::max_gap(2))
//!     .top_k(5)
//!     .min_len(2)
//!     .run();
//! assert!(constrained_topk.len() <= 5);
//!
//! // Phase 1 persists: write the snapshot once, reopen it zero-copy on
//! // every cold start (mmap + checksum; no re-tokenizing or re-indexing).
//! let path = std::env::temp_dir().join(format!("rgm-doc-{}.snap", std::process::id()));
//! prepared.write_snapshot(&path).unwrap();
//! let reopened = PreparedDb::open_snapshot(&path).unwrap();
//! let cold = reopened.miner().min_sup(2).mode(Mode::Closed).run();
//! assert_eq!(cold.patterns, closed.patterns);
//! std::fs::remove_file(&path).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baselines;
pub use rgs_core as core;
pub use rgs_features as features;
pub use seqdb;
pub use synthgen;

/// Convenience re-exports of the most commonly used items.
///
/// The deprecated 0.1 free functions (`mine_all`, `mine_closed`, …) are
/// still re-exported so existing code keeps compiling; migrate to
/// [`Miner`](rgs_core::Miner) — see the crate README for the mapping.
pub mod prelude {
    pub use rgs_core::ShardFootprint;
    pub use rgs_core::{
        constrained_support, instance_growth, postprocess, repetitive_support, support_set,
        BudgetSink, CollectSink, CountSink, DeadlineSink, ExecutionPolicy, GapConstraints,
        Instance, Landmark, MinedPattern, Miner, MiningConfig, MiningOutcome, MiningReport,
        MiningRequest, MiningResult, MiningSession, Mode, Pattern, PatternSink, PatternStream,
        PostProcessConfig, PreparedDb, SupportComputer, SupportSet, TopKConfig,
    };
    #[allow(deprecated)]
    pub use rgs_core::{
        mine_all, mine_all_constrained, mine_closed, mine_closed_constrained, mine_maximal,
        mine_top_k,
    };
    pub use rgs_features::{
        extract_features, ClassId, Classifier, FeatureMatrix, LabeledDatabase, SelectionMethod,
    };
    pub use seqdb::{
        DatabaseBuilder, EventCatalog, EventId, InvertedIndex, Sequence, SequenceDatabase,
        ShardMap, ShardedIndex, ShardedSeqStore, SnapshotError,
    };
}
