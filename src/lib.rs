//! # repetitive-gapped-mining — umbrella crate
//!
//! A from-scratch Rust reproduction of *"Efficient Mining of Closed
//! Repetitive Gapped Subsequences from a Sequence Database"* (Ding, Lo, Han
//! & Khoo, ICDE 2009).
//!
//! This crate re-exports the public API of the workspace members so that a
//! downstream user only needs one dependency:
//!
//! * [`seqdb`] — sequence database model, inverted event index, dataset I/O,
//! * [`core`] (crate `rgs-core`) — repetitive support, instance growth,
//!   GSgrow, CloGSgrow, case-study post-processing,
//! * [`synthgen`] — synthetic workload generators reproducing the paper's
//!   evaluation datasets,
//! * [`baselines`] — sequential-pattern miners (PrefixSpan, BIDE-style,
//!   CloSpan-lite, SPAM-style), serial episode miners, and the alternative
//!   support semantics of Table I,
//! * [`features`] (crate `rgs-features`) — per-sequence repetitive-support
//!   feature extraction, discriminative pattern selection, and sequence
//!   classification (the paper's future-work direction).
//!
//! Beyond the paper's two algorithms, `rgs-core` also ships the extensions
//! sketched in the paper's conclusion: gap/window-constrained mining
//! ([`core::constrained`]), top-k mining ([`core::topk`]), and maximal
//! pattern mining ([`core::maximal`]).
//!
//! # Example
//!
//! ```
//! use repetitive_gapped_mining::prelude::*;
//!
//! // Example 1.1 of the paper: two customers' purchase histories.
//! let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
//!
//! // Closed repetitive gapped subsequences with support >= 2.
//! let closed = mine_closed(&db, &MiningConfig::new(2));
//! assert!(!closed.is_empty());
//!
//! // Repetitive support distinguishes AB (repeats within S1) from CD.
//! let ab = db.pattern_from_str("AB").unwrap();
//! let cd = db.pattern_from_str("CD").unwrap();
//! assert_eq!(repetitive_support(&db, &ab), 4);
//! assert_eq!(repetitive_support(&db, &cd), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baselines;
pub use rgs_core as core;
pub use rgs_features as features;
pub use seqdb;
pub use synthgen;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use rgs_core::{
        constrained_support, instance_growth, mine_all, mine_all_constrained, mine_closed,
        mine_closed_constrained, mine_maximal, mine_top_k, postprocess, repetitive_support,
        support_set, GapConstraints, Instance, Landmark, MinedPattern, MiningConfig,
        MiningOutcome, Pattern, PostProcessConfig, SupportComputer, SupportSet, TopKConfig,
    };
    pub use rgs_features::{
        extract_features, ClassId, Classifier, FeatureMatrix, LabeledDatabase, SelectionMethod,
    };
    pub use seqdb::{
        DatabaseBuilder, EventCatalog, EventId, InvertedIndex, Sequence, SequenceDatabase,
    };
}
