//! Gap-constrained mining of repeated motifs in DNA-like sequences.
//!
//! The paper's conclusion names long DNA/protein sequences as the setting
//! where repetitive mining needs *gap constraints*: a motif whose bases are
//! spread across the whole chromosome is biologically meaningless, so the
//! gap between successive pattern events and the total window an instance
//! may span must be bounded. This example contrasts unconstrained and
//! constrained mining on synthetic DNA with planted motifs.
//!
//! Run with `cargo run --release --example dna_motifs`.

use repetitive_gapped_mining::prelude::*;

/// Builds a synthetic chromosome: random A/C/G/T background with a motif
/// planted every ~30 bases, each occurrence slightly corrupted by insertions.
fn synthetic_chromosome(length: usize, motif: &str, seed: u64) -> String {
    let bases = ['A', 'C', 'G', 'T'];
    let mut state = seed;
    let mut next = move || {
        // xorshift64* — deterministic, dependency-free randomness.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut chromosome = String::with_capacity(length + motif.len() * (length / 30 + 1));
    while chromosome.len() < length {
        // ~25 bases of background noise …
        for _ in 0..25 + (next() % 10) as usize {
            chromosome.push(bases[(next() % 4) as usize]);
        }
        // … then one noisy occurrence of the motif (a random base inserted
        // after every second motif base — gaps the miner must tolerate).
        for (i, base) in motif.chars().enumerate() {
            chromosome.push(base);
            if i % 2 == 1 {
                chromosome.push(bases[(next() % 4) as usize]);
            }
        }
    }
    chromosome.truncate(length.max(motif.len()));
    chromosome
}

fn main() {
    let motif = "GATTACA";
    let chromosome = synthetic_chromosome(1_500, motif, 7);
    let db = SequenceDatabase::from_str_rows(&[chromosome.as_str()]);
    println!(
        "chromosome of {} bases over {} symbols, planted motif {motif}",
        db.total_length(),
        db.num_events()
    );

    let motif_pattern = db.pattern_from_str(motif).expect("motif uses A/C/G/T");

    // Unconstrained repetitive support: instances may span the whole
    // chromosome, so the count says little about locality.
    let unconstrained = repetitive_support(&db, &motif_pattern);

    // Constrained support: each consecutive pair of bases at most 2 apart
    // and the whole instance within a 16-base window — the planted, locally
    // repeated occurrences.
    let constraints = GapConstraints::max_gap(1).with_max_window(16);
    let constrained = constrained_support(&db, &motif_pattern, constraints);
    println!("sup({motif})              = {unconstrained}  (unconstrained)");
    println!(
        "sup({motif} | {:<22}) = {constrained}",
        constraints.describe()
    );

    // Mine the closed patterns under the same constraints and show the
    // longest ones — the planted motif (and its sub-motifs) should dominate.
    let min_sup = (constrained / 2).max(3);
    let mut closed = Miner::new(&db)
        .min_sup(min_sup)
        .mode(Mode::Closed)
        .constraints(constraints)
        .max_patterns(50_000)
        .run();
    closed.sort_for_report();
    println!(
        "\nclosed gap-constrained patterns (min_sup = {min_sup}): {} patterns",
        closed.len()
    );
    let catalog = db.catalog();
    let mut shown = 0;
    for mp in &closed.patterns {
        if mp.pattern.len() >= 4 {
            println!("  {:<12} sup = {}", mp.pattern.render(catalog), mp.support);
            shown += 1;
            if shown >= 10 {
                break;
            }
        }
    }

    // The same threshold without constraints explodes into spurious
    // combinations of background bases: on a random chromosome *any* short
    // base combination has high unconstrained repetitive support. The run
    // below stops at a safety cap of 5 000 patterns (length-capped at 8),
    // the same "cut-off" device the paper uses for GSgrow in Figures 2–6.
    let unconstrained_all = Miner::new(&db)
        .min_sup(min_sup)
        .mode(Mode::All)
        .max_patterns(5_000)
        .max_pattern_length(8)
        .run();
    println!(
        "\npattern count at min_sup = {min_sup}: {} gap-constrained closed vs {}{} unconstrained",
        closed.len(),
        unconstrained_all.len(),
        if unconstrained_all.truncated {
            " (hit the safety cap)"
        } else {
            ""
        }
    );
}
