//! Reproduces the Table I / Example 1.1 comparison: the support of the
//! patterns `AB` and `CD` under every related-work support semantics.
//!
//! Run with `cargo run --example semantics_comparison`.

use repetitive_gapped_mining::baselines::semantics;
use repetitive_gapped_mining::prelude::*;

fn main() {
    // Example 1.1: S1 = AABCDABB (customer with repeating behaviour),
    //              S2 = ABCD (one-off customer).
    let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
    let s1 = db.sequence(0).expect("S1 exists");
    let ab = db.pattern_from_str("AB").expect("AB");
    let cd = db.pattern_from_str("CD").expect("CD");

    println!("S1 = AABCDABB, S2 = ABCD\n");
    println!(
        "{:<55} {:>7} {:>7}",
        "support semantics", "sup(AB)", "sup(CD)"
    );
    println!("{}", "-".repeat(71));

    let row = |name: &str, ab_value: u64, cd_value: u64| {
        println!("{name:<55} {ab_value:>7} {cd_value:>7}");
    };

    row(
        "sequential pattern mining (sequences containing P)",
        semantics::sequence_count_support(&db, &ab),
        semantics::sequence_count_support(&db, &cd),
    );
    row(
        "episode mining, width-4 windows (S1 only)",
        semantics::episode_window_count(s1, &ab, 4),
        semantics::episode_window_count(s1, &cd, 4),
    );
    row(
        "episode mining, minimal windows (S1 only)",
        semantics::minimal_window_count(s1, &ab),
        semantics::minimal_window_count(s1, &cd),
    );
    row(
        "periodic patterns, gap requirement 0..=3 (S1 only)",
        semantics::gap_constrained_count(s1, &ab, 0, 3),
        semantics::gap_constrained_count(s1, &cd, 0, 3),
    );
    row(
        "interaction patterns (substrings, whole DB)",
        semantics::interaction_pattern_support(&db, &ab),
        semantics::interaction_pattern_support(&db, &cd),
    );
    row(
        "iterative patterns (MSC/LSC semantics, whole DB)",
        semantics::iterative_pattern_support(&db, &ab),
        semantics::iterative_pattern_support(&db, &cd),
    );
    row(
        "repetitive support (this paper, whole DB)",
        repetitive_support(&db, &ab),
        repetitive_support(&db, &cd),
    );

    println!(
        "\nOnly repetitive support both (i) counts within-sequence repetition and\n\
         (ii) counts every sequence's non-overlapping occurrences exactly once,\n\
         which is why AB (4) is separated from CD (2) without over-counting."
    );
}
