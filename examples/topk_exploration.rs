//! Exploring a dataset with top-k and maximal mining instead of guessing a
//! support threshold.
//!
//! Figures 2–6 of the paper show how sensitive the output size is to
//! `min_sup`; for exploratory analysis it is often easier to ask for "the
//! 15 most frequent closed patterns of length ≥ 2" (top-k mining) or for
//! "the longest patterns that are still frequent" (maximal mining). Both are
//! built on the same instance-growth machinery.
//!
//! Run with `cargo run --release --example topk_exploration`.

use repetitive_gapped_mining::prelude::*;
use repetitive_gapped_mining::synthgen::QuestConfig;

fn main() {
    // A small QUEST-style synthetic dataset (the paper's D?C20N10S20 shape,
    // scaled down so the example runs in well under a second).
    let db = QuestConfig::paper(5, 20, 10, 20).scaled_down(50).generate();
    println!("dataset: {}", db.stats().summary());

    // 1. Top-k closed patterns of length >= 2, no threshold guessing.
    let topk = Miner::new(&db)
        .min_sup(3)
        .mode(Mode::Closed)
        .top_k(15)
        .min_len(2)
        .run();
    println!("\ntop-{} closed patterns (length >= 2):", topk.len());
    let catalog = db.catalog();
    for mp in &topk.patterns {
        println!(
            "  sup {:>4}  {}",
            mp.support,
            mp.pattern.render_with(catalog, " ")
        );
    }

    // 2. The support of the 15th pattern is a data-driven threshold: use it
    //    for a conventional closed-pattern run and compare sizes.
    let data_driven_threshold = topk.patterns.last().map(|mp| mp.support).unwrap_or(2);
    let closed = Miner::new(&db)
        .min_sup(data_driven_threshold)
        .mode(Mode::Closed)
        .run();
    println!(
        "\nclosed patterns at the data-driven threshold {}: {}",
        data_driven_threshold,
        closed.len()
    );

    // 3. Maximal patterns at the same threshold: the frontier of longest
    //    frequent behaviour.
    let maximal = Miner::new(&db)
        .min_sup(data_driven_threshold)
        .mode(Mode::Maximal)
        .run();
    println!(
        "maximal patterns at the same threshold: {} (longest length {})",
        maximal.len(),
        maximal.max_pattern_length()
    );
    let mut by_length = maximal.patterns.clone();
    by_length.sort_by_key(|mp| std::cmp::Reverse(mp.pattern.len()));
    for mp in by_length.iter().take(5) {
        println!(
            "  len {:>2} sup {:>3}  {}",
            mp.pattern.len(),
            mp.support,
            mp.pattern.render_with(catalog, " ")
        );
    }
}
