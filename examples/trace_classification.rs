//! Classifying buggy vs. normal program traces with repetitive-pattern
//! features — the application sketched in the paper's future-work section.
//!
//! The pipeline is: generate a labeled corpus of execution traces, mine the
//! closed repetitive gapped subsequences of the training split, keep the
//! most discriminative patterns (by the spread of per-class mean supports),
//! train a simple classifier on the per-sequence repetition counts, and
//! evaluate on the held-out split.
//!
//! Run with `cargo run --release --example trace_classification`.

use repetitive_gapped_mining::features::pipeline::{run_pipeline, PipelineConfig};
use repetitive_gapped_mining::features::{LabeledDatabase, SelectionMethod};
use repetitive_gapped_mining::synthgen::labeled::LabeledTraceConfig;

fn main() {
    // 1. A labeled corpus: 60 normal + 60 buggy traces of a small
    //    resource-handling program. Both classes share the vocabulary; they
    //    differ in how often `error retry` bursts and unmatched `acquire`s
    //    repeat within a trace.
    let (db, labels) = LabeledTraceConfig::default().generate();
    let data = LabeledDatabase::new(db, labels).expect("labels align with sequences");
    println!("corpus: {}", data.summary());

    // 2. Stratified train/test split.
    let (train, test) = data
        .stratified_split(0.7, 42)
        .expect("both classes are large enough to split");
    println!(
        "train: {} sequences, test: {} sequences",
        train.num_sequences(),
        test.num_sequences()
    );

    // 3. Mine → select → train on the training split only. Candidate
    //    patterns are capped at length 4: the discriminative behaviours
    //    (`error retry` bursts, unmatched `acquire use`) are short, and the
    //    cap keeps the candidate set small on these loop-heavy traces.
    let config = PipelineConfig::new(60, 8)
        .with_selection(SelectionMethod::MeanDifference)
        .with_max_pattern_length(4);
    let report = run_pipeline(&train, &config).expect("pipeline runs");
    println!(
        "mined {} closed patterns, selected {} discriminative features:",
        report.mined_patterns,
        report.pipeline.selected.len()
    );
    let catalog = train.database().catalog();
    for scored in &report.pipeline.selected {
        println!(
            "  {:<30} score {:.3}",
            scored.pattern.render_with(catalog, " "),
            scored.score
        );
    }
    println!("training accuracy: {:.3}", report.training_accuracy);

    // 4. Evaluate on the held-out traces.
    let eval = report.pipeline.evaluate(&test);
    println!("held-out accuracy: {:.3}", eval.accuracy());
    println!("held-out macro-F1: {:.3}", eval.macro_f1());
    for (class, name) in test.class_names().iter().enumerate() {
        println!(
            "  class {name:<7} precision {:.3} recall {:.3}",
            eval.precision(class),
            eval.recall(class)
        );
    }
}
