//! Software-behaviour mining: the §IV-B case study end to end.
//!
//! Generates JBoss-transaction-like execution traces, mines the closed
//! repetitive gapped subsequences at the paper's threshold (min_sup = 18),
//! applies the case-study post-processing (density > 40 %, maximality,
//! ranking by length) and prints the recovered behavioural specification.
//!
//! Run with `cargo run --release --example trace_specification`
//! (release mode recommended: the closed miner visits thousands of nodes).

use repetitive_gapped_mining::prelude::*;
use repetitive_gapped_mining::synthgen::JbossConfig;

fn main() {
    let db = JbossConfig::default().generate();
    println!("traces: {}", db.stats().summary());

    let min_sup = 18;
    let closed = Miner::new(&db).min_sup(min_sup).mode(Mode::Closed).run();
    println!(
        "CloGSgrow: {} closed patterns at min_sup = {min_sup} in {:.2}s ({} DFS nodes, {} LB prunes)",
        closed.len(),
        closed.stats.elapsed_seconds,
        closed.stats.visited,
        closed.stats.landmark_border_prunes,
    );

    // Case-study post-processing: density > 40 %, maximal patterns only,
    // ranked by length.
    let survivors = postprocess(&closed.patterns, &PostProcessConfig::default());
    println!(
        "{} patterns remain after density + maximality filtering\n",
        survivors.len()
    );

    if let Some(longest) = survivors.first() {
        println!(
            "longest behavioural pattern (length {}, support {}):",
            longest.pattern.len(),
            longest.support
        );
        for (idx, event) in longest.pattern.events().iter().enumerate() {
            println!(
                "  {:>3}. {}",
                idx + 1,
                db.catalog().label_or_default(*event)
            );
        }
    }

    // The most frequent 2-event behaviour: lock -> unlock.
    let lock_unlock = db
        .pattern_from_labels(&["TransImpl.lock", "TransImpl.unlock"])
        .expect("events exist");
    println!(
        "\nmost fine-grained repetition: TransImpl.lock -> TransImpl.unlock, repetitive support = {}",
        repetitive_support(&db, &lock_unlock)
    );
}
