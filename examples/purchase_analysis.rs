//! Purchase-history analysis: the motivating scenario of the paper's
//! introduction.
//!
//! Sequential pattern mining cannot tell a behaviour that happens once per
//! customer from one that repeats many times for some customers; repetitive
//! support can. This example builds the paper's "larger example" (50
//! customers with heavily repeating A→B behaviour, 50 customers with a
//! single occurrence) and shows how the two measures diverge, then mines
//! the closed repetitive patterns.
//!
//! Run with `cargo run --example purchase_analysis`.

use repetitive_gapped_mining::baselines::semantics::sequence_count_support;
use repetitive_gapped_mining::prelude::*;

fn main() {
    // Event legend (Example 1.1): A = request placed, B = request
    // in-process, C = request cancelled, D = product delivered.
    // 50 customers whose requests loop through A→B five times, then 50
    // customers with a single straightforward purchase.
    let mut rows: Vec<&str> = vec!["CABABABABABD"; 50];
    rows.extend(std::iter::repeat_n("ABCD", 50));
    let db = SequenceDatabase::from_str_rows(&rows);
    println!("dataset: {}", db.stats().summary());

    let ab = db.pattern_from_str("AB").expect("pattern AB");
    let cd = db.pattern_from_str("CD").expect("pattern CD");

    // Sequential pattern mining: both behaviours look identical.
    println!(
        "sequence-count support  : AB = {:>3}, CD = {:>3}  (indistinguishable)",
        sequence_count_support(&db, &ab),
        sequence_count_support(&db, &cd)
    );
    // Repetitive support: AB is far more frequent because it repeats within
    // the first group of customers (5 * 50 + 50 = 300 in the paper).
    println!(
        "repetitive support      : AB = {:>3}, CD = {:>3}  (AB repeats within sequences)",
        repetitive_support(&db, &ab),
        repetitive_support(&db, &cd)
    );

    // Mine the closed repetitive patterns that at least half of the
    // purchase events support.
    let closed = Miner::new(&db).min_sup(100).mode(Mode::Closed).run();
    let mut report = closed.clone();
    report.sort_for_report();
    println!("\nclosed repetitive patterns with support >= 100:");
    for mined in report.patterns.iter().take(10) {
        println!(
            "  {:<8} sup = {:>4}",
            mined.pattern.render(db.catalog()),
            mined.support
        );
    }
    println!(
        "\n{} closed patterns vs {} frequent patterns at the same threshold",
        closed.len(),
        Miner::new(&db).min_sup(100).mode(Mode::All).run().len()
    );
}
