//! Quickstart: mine closed repetitive gapped subsequences from a small
//! in-memory database and inspect supports and support sets.
//!
//! Run with `cargo run --example quickstart`.

use repetitive_gapped_mining::prelude::*;

fn main() {
    // The running example of the paper (Table III):
    //   S1 = A B C A C B D D B
    //   S2 = A C D B A C A D D
    let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
    println!("dataset: {}", db.stats().summary());

    // 1. Repetitive support of a single pattern.
    let acb = db.pattern_from_str("ACB").expect("events exist");
    println!("sup(ACB) = {}", repetitive_support(&db, &acb));

    // 2. Prepare the database once: the interning, the inverted index, and
    //    the frequent-event counts are shared by every query below.
    let prepared = PreparedDb::new(&db);

    // The leftmost support set, with full landmarks (Table IV), through the
    // snapshot's support computer (no index rebuild).
    let sc = prepared.support_computer();
    let pattern = Pattern::new(acb.clone());
    for landmark in sc.support_landmarks(&pattern) {
        println!("  instance {landmark}");
    }

    // 3. Mine all frequent patterns and the closed subset at min_sup = 3 —
    //    two queries borrowing one prepared snapshot.
    let all = prepared.miner().min_sup(3).mode(Mode::All).run();
    let closed = prepared.miner().min_sup(3).mode(Mode::Closed).run();
    println!(
        "min_sup = 3: {} frequent patterns, {} closed patterns",
        all.len(),
        closed.len()
    );

    // Pull-based consumption: iterate the engine lazily instead of
    // materializing (drop the stream to cancel the rest of the search).
    let session = prepared.miner().min_sup(3).mode(Mode::Closed).session();
    if let Some(first) = session.stream().next() {
        println!(
            "first closed pattern in DFS order: {} (sup = {})",
            first.pattern.render(db.catalog()),
            first.support
        );
    }

    // 4. Show the closed patterns with their supports.
    let mut report = closed.clone();
    report.sort_for_report();
    for mined in &report.patterns {
        println!(
            "  closed: {:<6} sup = {}",
            mined.pattern.render(db.catalog()),
            mined.support
        );
    }

    // 5. The non-closed pattern AB is covered by ACB (same support), so it
    //    is absent from the closed result but derivable from it.
    let ab = Pattern::new(db.pattern_from_str("AB").expect("events exist"));
    assert!(all.contains(&ab));
    assert!(!closed.contains(&ab));
    println!("AB is frequent but not closed: it is subsumed by ACB with equal support");
}
