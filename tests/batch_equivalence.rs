//! Differential suite for the batch query engine: every request of a
//! random batch executed through `PreparedDb::batch` must be bit-identical
//! — patterns, supports, emission order, truncation flag, work counters —
//! to the same request run solo through the sequential one-by-one loop.
//! Random cases come from a deterministic seeded PRNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use repetitive_gapped_mining::prelude::*;

const LABELS: [&str; 5] = ["A", "B", "C", "D", "E"];

fn random_database(rng: &mut StdRng) -> SequenceDatabase {
    let rows: Vec<Vec<&str>> = (0..rng.gen_range(1..=5usize))
        .map(|_| {
            (0..rng.gen_range(0..=12usize))
                .map(|_| LABELS[rng.gen_range(0..LABELS.len())])
                .collect()
        })
        .collect();
    SequenceDatabase::from_token_rows(&rows)
}

fn random_request(rng: &mut StdRng) -> MiningRequest {
    let mut request = MiningRequest {
        min_sup: rng.gen_range(1..=6u64),
        mode: match rng.gen_range(0..4u32) {
            0 => Mode::All,
            1 => Mode::Closed,
            2 => Mode::Maximal,
            _ => Mode::TopK,
        },
        constraints: match rng.gen_range(0..4u32) {
            0 => GapConstraints::max_gap(rng.gen_range(0..=3u32)),
            1 => GapConstraints::max_window(rng.gen_range(2..=6u32)),
            2 => GapConstraints::gap_range(rng.gen_range(0..=1u32), rng.gen_range(2..=4u32)),
            _ => GapConstraints::unbounded(),
        },
        ..MiningRequest::default()
    };
    if rng.gen_bool(0.35) {
        request.top_k = Some(rng.gen_range(0..=8usize));
    }
    if rng.gen_bool(0.3) {
        request.min_len = rng.gen_range(1..=3usize);
    }
    if rng.gen_bool(0.3) {
        request.max_pattern_length = Some(rng.gen_range(1..=4usize));
    }
    if rng.gen_bool(0.3) {
        request.max_patterns = Some(rng.gen_range(1..=20usize));
    }
    if rng.gen_bool(0.25) {
        request.keep_support_sets = true;
    }
    if rng.gen_bool(0.25) {
        request.use_landmark_pruning = false;
    }
    request
}

/// Runs one request solo through the sequential engine — the reference the
/// batch contract is pinned against.
fn solo(prepared: &PreparedDb, request: &MiningRequest) -> MiningOutcome {
    let mut reference = request.clone();
    reference.execution = ExecutionPolicy::Sequential;
    prepared.miner().with_request(reference).run()
}

/// Asserts the full bit-identity contract for every member of a batch.
/// `elapsed_seconds` is the one sanctioned difference (whole-batch wall
/// clock) and is never compared.
fn assert_batch_matches_solo(prepared: &PreparedDb, requests: &[MiningRequest], context: &str) {
    let batched = prepared.batch(requests);
    assert_eq!(batched.len(), requests.len(), "{context}: result count");
    for (i, (request, result)) in requests.iter().zip(&batched).enumerate() {
        let expected = solo(prepared, request);
        assert_eq!(
            result.outcome.patterns, expected.patterns,
            "{context}: request {i} patterns diverge ({request:?})"
        );
        assert_eq!(
            result.outcome.truncated, expected.truncated,
            "{context}: request {i} truncation diverges ({request:?})"
        );
        assert_eq!(
            result.outcome.stats.visited, expected.stats.visited,
            "{context}: request {i} visited counter diverges ({request:?})"
        );
        assert_eq!(
            result.outcome.stats.instance_growths, expected.stats.instance_growths,
            "{context}: request {i} growth counter diverges ({request:?})"
        );
        assert_eq!(
            result.outcome.stats.non_closed_filtered, expected.stats.non_closed_filtered,
            "{context}: request {i} closure counter diverges ({request:?})"
        );
        assert_eq!(
            result.outcome.stats.landmark_border_prunes, expected.stats.landmark_border_prunes,
            "{context}: request {i} pruning counter diverges ({request:?})"
        );
        assert!(
            !result.cancelled,
            "{context}: request {i} spuriously cancelled"
        );
    }
}

/// Random batches of 1–16 mixed requests over random databases.
#[test]
fn random_batches_match_one_by_one_loop() {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    for case in 0..60 {
        let db = random_database(&mut rng);
        let prepared = PreparedDb::new(&db);
        let requests: Vec<MiningRequest> = (0..rng.gen_range(1..=16usize))
            .map(|_| random_request(&mut rng))
            .collect();
        assert_batch_matches_solo(&prepared, &requests, &format!("case {case}"));
    }
}

/// Single-request batches across many random shapes: batching one request
/// must be a no-op wrapper around the solo run.
#[test]
fn single_request_batches_are_transparent() {
    let mut rng = StdRng::seed_from_u64(0x51461E);
    for case in 0..40 {
        let db = random_database(&mut rng);
        let prepared = PreparedDb::new(&db);
        let request = random_request(&mut rng);
        assert_batch_matches_solo(&prepared, &[request], &format!("case {case}"));
    }
}

/// Duplicate requests inside one batch: every copy gets its own complete,
/// identical result (no shared mutable bookkeeping between twins).
#[test]
fn duplicate_requests_each_get_full_results() {
    let mut rng = StdRng::seed_from_u64(0xD0_D0D0);
    for case in 0..25 {
        let db = random_database(&mut rng);
        let prepared = PreparedDb::new(&db);
        let request = random_request(&mut rng);
        let copies = rng.gen_range(2..=4usize);
        let requests: Vec<MiningRequest> = (0..copies).map(|_| request.clone()).collect();
        assert_batch_matches_solo(&prepared, &requests, &format!("case {case}"));
        let batched = prepared.batch(&requests);
        for pair in batched.windows(2) {
            assert_eq!(
                pair.first().map(|r| &r.outcome),
                pair.get(1).map(|r| &r.outcome),
                "case {case}: duplicate requests disagree"
            );
        }
    }
}

/// Paper running example, exhaustive mode × constraint × top-k grid in one
/// giant batch: the whole grid shares a handful of scans yet every cell
/// must replay its solo run.
#[test]
fn running_example_full_grid_in_one_batch() {
    let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
    let prepared = PreparedDb::new(&db);
    let mut requests = Vec::new();
    for mode in [Mode::All, Mode::Closed, Mode::Maximal, Mode::TopK] {
        for min_sup in [1u64, 2, 3, 5] {
            for constraints in [
                GapConstraints::unbounded(),
                GapConstraints::max_gap(1),
                GapConstraints::max_window(4),
            ] {
                for top_k in [None, Some(3)] {
                    requests.push(MiningRequest {
                        mode,
                        min_sup,
                        constraints,
                        top_k,
                        ..MiningRequest::default()
                    });
                }
            }
        }
    }
    assert_batch_matches_solo(&prepared, &requests, "running-example grid");
}

/// Support sets survive batching bit-identically when requested.
#[test]
fn kept_support_sets_match_solo() {
    let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
    let prepared = PreparedDb::new(&db);
    let request = MiningRequest {
        min_sup: 2,
        mode: Mode::Closed,
        keep_support_sets: true,
        ..MiningRequest::default()
    };
    let batched = prepared.batch(std::slice::from_ref(&request));
    let expected = solo(&prepared, &request);
    let result = batched.first().expect("one result");
    assert_eq!(result.outcome.patterns, expected.patterns);
    assert!(result
        .outcome
        .patterns
        .iter()
        .all(|p| p.support_set.is_some()));
}
