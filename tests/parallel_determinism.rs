//! Property suite for deterministic parallel execution: on randomized
//! databases (seeded PRNG), `ExecutionPolicy::Parallel { 2..8 }` must
//! produce a **bit-identical** pattern list to `Sequential` across all four
//! modes, with and without gap constraints, with and without retained
//! support sets, ranking, and pattern caps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use repetitive_gapped_mining::prelude::*;

/// Thread counts exercised against every sequential run (the `2..8` band:
/// uneven seed/worker ratios, more workers than seeds, and a power of two).
const THREADS: [usize; 4] = [2, 3, 5, 8];

fn random_database(rng: &mut StdRng) -> SequenceDatabase {
    let labels = ["A", "B", "C", "D", "E"];
    let num_events = rng.gen_range(2..=labels.len());
    let rows: Vec<Vec<&str>> = (0..rng.gen_range(1..=5usize))
        .map(|_| {
            (0..rng.gen_range(0..=10usize))
                .map(|_| labels[rng.gen_range(0..num_events)])
                .collect()
        })
        .collect();
    SequenceDatabase::from_token_rows(&rows)
}

fn assert_parallel_matches_sequential(db: &SequenceDatabase, label: &str, rng: &mut StdRng) {
    let min_sup = rng.gen_range(1..4u64);
    let constraint_cases = [GapConstraints::unbounded(), GapConstraints::max_gap(2)];
    for mode in [Mode::All, Mode::Closed, Mode::Maximal, Mode::TopK] {
        for constraints in constraint_cases {
            let build = |threads: usize| {
                let mut miner = Miner::new(db)
                    .min_sup(min_sup)
                    .mode(mode)
                    .constraints(constraints)
                    .keep_support_sets()
                    .threads(threads);
                if mode == Mode::TopK {
                    miner = miner.top_k(6).min_len(2);
                }
                miner.run()
            };
            let sequential = build(1);
            for threads in THREADS {
                let parallel = build(threads);
                assert_eq!(
                    sequential.patterns,
                    parallel.patterns,
                    "{label}: {mode:?} with {} at min_sup {min_sup} diverges on {threads} threads",
                    constraints.describe()
                );
                assert_eq!(
                    sequential.truncated, parallel.truncated,
                    "{label}: {mode:?} truncation flag diverges on {threads} threads"
                );
            }
        }
    }
}

#[test]
fn parallel_matches_sequential_on_the_paper_examples() {
    let mut rng = StdRng::seed_from_u64(0x9A11E1);
    for rows in [
        vec!["AABCDABB", "ABCD"],
        vec!["ABCACBDDB", "ACDBACADD"],
        vec!["ABCABCA", "AABBCCC"],
    ] {
        let db = SequenceDatabase::from_str_rows(&rows);
        assert_parallel_matches_sequential(&db, &format!("{rows:?}"), &mut rng);
    }
}

#[test]
fn parallel_matches_sequential_on_random_databases() {
    let mut rng = StdRng::seed_from_u64(0x000D_E7E2_1415);
    for case in 0..12 {
        let db = random_database(&mut rng);
        assert_parallel_matches_sequential(&db, &format!("random case {case}"), &mut rng);
    }
}

#[test]
fn parallel_respects_caps_min_len_and_ranking_on_random_databases() {
    let mut rng = StdRng::seed_from_u64(0xCA9_F100D);
    for case in 0..12 {
        let db = random_database(&mut rng);
        let min_sup = rng.gen_range(1..3u64);
        let cap = rng.gen_range(1..8usize);
        let min_len = rng.gen_range(0..3usize);
        for mode in [Mode::All, Mode::Closed, Mode::Maximal] {
            let build = |threads: usize| {
                Miner::new(&db)
                    .min_sup(min_sup)
                    .mode(mode)
                    .min_len(min_len)
                    .max_patterns(cap)
                    .threads(threads)
                    .run()
            };
            let sequential = build(1);
            for threads in THREADS {
                let parallel = build(threads);
                assert_eq!(
                    sequential.patterns, parallel.patterns,
                    "random case {case}: {mode:?} capped at {cap}, min_len {min_len}, \
                     min_sup {min_sup}, {threads} threads"
                );
                assert_eq!(sequential.truncated, parallel.truncated);
            }
        }
        // Ranked runs under constraints (the general ranked path).
        let constraints = GapConstraints::max_gap(rng.gen_range(0..3u32));
        let build_ranked = |threads: usize| {
            Miner::new(&db)
                .min_sup(min_sup)
                .mode(Mode::Closed)
                .constraints(constraints)
                .top_k(4)
                .min_len(1)
                .threads(threads)
                .run()
        };
        let sequential = build_ranked(1);
        for threads in THREADS {
            assert_eq!(
                sequential.patterns,
                build_ranked(threads).patterns,
                "random case {case}: constrained ranked run diverges on {threads} threads"
            );
        }
    }
}
