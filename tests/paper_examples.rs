//! Cross-crate integration tests encoding the worked examples of the paper
//! end to end through the umbrella crate's public API.

use repetitive_gapped_mining::prelude::*;

/// Table III of the paper: S1 = ABCACBDDB, S2 = ACDBACADD.
fn running_example() -> SequenceDatabase {
    SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
}

#[test]
fn example_1_1_supports() {
    let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
    let ab = db.pattern_from_str("AB").unwrap();
    let cd = db.pattern_from_str("CD").unwrap();
    assert_eq!(repetitive_support(&db, &ab), 4);
    assert_eq!(repetitive_support(&db, &cd), 2);
}

#[test]
fn example_2_2_and_2_3_supports_and_closedness() {
    let db = SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"]);
    let ab = db.pattern_from_str("AB").unwrap();
    let aba = db.pattern_from_str("ABA").unwrap();
    let abc = db.pattern_from_str("ABC").unwrap();
    assert_eq!(repetitive_support(&db, &ab), 4);
    assert_eq!(repetitive_support(&db, &aba), 2);
    assert_eq!(repetitive_support(&db, &abc), 4);

    // Because sup(AB) = sup(ABC), AB is not closed.
    let closed = Miner::new(&db).min_sup(2).mode(Mode::Closed).run();
    assert!(!closed.contains(&Pattern::new(ab)));
    assert!(closed.contains(&Pattern::new(abc)));
}

#[test]
fn example_3_1_instance_growth_supports() {
    let db = running_example();
    for (pattern, expected) in [("A", 5), ("AC", 4), ("ACB", 3), ("ACA", 3)] {
        let events = db.pattern_from_str(pattern).unwrap();
        assert_eq!(repetitive_support(&db, &events), expected, "sup({pattern})");
    }
}

#[test]
fn table_iv_support_set_instances() {
    let db = running_example();
    let acb = db.pattern_from_str("ACB").unwrap();
    let set = support_set(&db, &acb);
    let instances: Vec<(u32, u32, u32)> = set
        .instances()
        .iter()
        .map(|i| (i.seq, i.first, i.last))
        .collect();
    assert_eq!(instances, vec![(0, 1, 6), (0, 4, 9), (1, 1, 4)]);
}

#[test]
fn example_3_4_apriori_pruning() {
    // With min_sup = 3, AA is frequent (3) but AAA is not (1).
    let db = running_example();
    let all = Miner::new(&db).min_sup(3).mode(Mode::All).run();
    assert_eq!(
        all.support_of(&Pattern::new(db.pattern_from_str("AA").unwrap())),
        Some(3)
    );
    assert!(!all.contains(&Pattern::new(db.pattern_from_str("AAA").unwrap())));
}

#[test]
fn examples_3_5_and_3_6_closed_mining() {
    let db = running_example();
    let closed = Miner::new(&db).min_sup(3).mode(Mode::Closed).run();
    // AB is frequent but not closed (ACB has the same support); ABD is
    // closed; AA is pruned by landmark border checking; AAD is not closed
    // (ACAD has equal support).
    assert!(!closed.contains(&Pattern::new(db.pattern_from_str("AB").unwrap())));
    assert!(closed.contains(&Pattern::new(db.pattern_from_str("ABD").unwrap())));
    assert!(!closed.contains(&Pattern::new(db.pattern_from_str("AA").unwrap())));
    assert!(!closed.contains(&Pattern::new(db.pattern_from_str("AAD").unwrap())));
    // ACB, ACA and ACAD are closed representatives with support 3.
    assert_eq!(
        closed.support_of(&Pattern::new(db.pattern_from_str("ACB").unwrap())),
        Some(3)
    );
    assert_eq!(
        closed.support_of(&Pattern::new(db.pattern_from_str("ACAD").unwrap())),
        Some(3)
    );
}

#[test]
fn closed_result_is_a_compact_lossless_summary_of_all_result() {
    let db = running_example();
    for min_sup in [2, 3] {
        let all = Miner::new(&db).min_sup(min_sup).mode(Mode::All).run();
        let closed = Miner::new(&db).min_sup(min_sup).mode(Mode::Closed).run();
        assert!(closed.len() <= all.len());
        for mined in &all.patterns {
            assert!(
                closed.patterns.iter().any(|cp| cp.support == mined.support
                    && (cp.pattern == mined.pattern
                        || mined.pattern.is_subpattern_of(&cp.pattern))),
                "{} not covered",
                mined.pattern.render(db.catalog())
            );
        }
    }
}

#[test]
fn introduction_overcounting_example() {
    // SeqDB = {AABBCC...ZZ}: the naive "count all instances" support would
    // give 2^26 for the full alphabet pattern; repetitive support gives 2.
    let doubled: String = ('A'..='Z').flat_map(|c| [c, c]).collect();
    let db = SequenceDatabase::from_str_rows(&[doubled.as_str()]);
    let full: String = ('A'..='Z').collect();
    let pattern = db.pattern_from_str(&full).unwrap();
    assert_eq!(repetitive_support(&db, &pattern), 2);
    let ab = db.pattern_from_str("AB").unwrap();
    assert_eq!(repetitive_support(&db, &ab), 2);
}

#[test]
fn umbrella_prelude_covers_the_whole_pipeline() {
    // generator -> miner -> post-processing through the re-exported API.
    use repetitive_gapped_mining::synthgen::QuestConfig;
    let db = QuestConfig {
        num_sequences: 60,
        avg_sequence_length: 12,
        num_events: 30,
        avg_pattern_length: 4,
        num_patterns: 8,
        ..QuestConfig::default()
    }
    .generate();
    let closed = Miner::new(&db)
        .min_sup(10)
        .mode(Mode::Closed)
        .max_patterns(50_000)
        .run();
    let processed = postprocess(&closed.patterns, &PostProcessConfig::default());
    assert!(processed.len() <= closed.len());
    for mined in &processed {
        assert!(mined.support >= 10);
    }
}
