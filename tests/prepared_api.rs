//! Integration suite for the prepared-query engine: `PreparedDb` reuse,
//! `Arc` sharing across threads, `Miner::prepare`, and the pull-based
//! `PatternStream` — all pinned against the lazy `Miner::new` path.

use std::sync::Arc;

use repetitive_gapped_mining::prelude::*;
use repetitive_gapped_mining::synthgen::TcasConfig;

fn running_example() -> SequenceDatabase {
    SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
}

fn tcas() -> SequenceDatabase {
    TcasConfig::default().scaled_down(32).generate()
}

#[test]
fn one_prepared_db_serves_every_query_shape() {
    let db = tcas();
    let prepared = PreparedDb::new(&db);
    let min_sup = (db.num_sequences() as u64) * 2;
    for mode in [Mode::All, Mode::Closed, Mode::Maximal, Mode::TopK] {
        for constraints in [GapConstraints::unbounded(), GapConstraints::max_gap(2)] {
            let fresh = Miner::new(&db)
                .min_sup(min_sup)
                .mode(mode)
                .constraints(constraints)
                .run();
            let reused = prepared
                .miner()
                .min_sup(min_sup)
                .mode(mode)
                .constraints(constraints)
                .run();
            assert_eq!(
                fresh.patterns,
                reused.patterns,
                "{mode:?} with {} diverges between lazy and prepared paths",
                constraints.describe()
            );
        }
    }
}

#[test]
fn miner_prepare_snapshots_the_database() {
    let db = running_example();
    let prepared = Miner::new(&db).prepare();
    let expected = Miner::new(&db).min_sup(2).run();
    drop(db); // the snapshot owns everything it needs
    let outcome = prepared.miner().min_sup(2).run();
    assert_eq!(outcome.patterns, expected.patterns);
    assert_eq!(prepared.frequent_events(2).len(), 4);
}

#[test]
fn arc_shared_snapshot_answers_concurrent_queries() {
    let prepared = Arc::new(PreparedDb::from_database(tcas()));
    let min_sup = (prepared.database().num_sequences() as u64) * 2;
    let expected = prepared.miner().min_sup(min_sup).mode(Mode::Closed).run();
    let handles: Vec<_> = (0..4u64)
        .map(|worker| {
            let shared = Arc::clone(&prepared);
            std::thread::spawn(move || {
                // Each worker issues a differently-shaped query plus the
                // common one, all borrowing the same snapshot.
                let common = Miner::from_shared(Arc::clone(&shared))
                    .min_sup(min_sup)
                    .mode(Mode::Closed)
                    .run();
                let own = Miner::from_shared(shared)
                    .min_sup(min_sup + worker)
                    .mode(Mode::All)
                    .run();
                (common.patterns, own.len())
            })
        })
        .collect();
    for handle in handles {
        let (common, _own) = handle.join().expect("query thread");
        assert_eq!(common, expected.patterns);
    }
}

#[test]
fn stream_equals_run_for_every_mode_and_source() {
    let db = running_example();
    let prepared = PreparedDb::new(&db);
    for mode in [Mode::All, Mode::Closed, Mode::Maximal, Mode::TopK] {
        for constraints in [GapConstraints::unbounded(), GapConstraints::max_gap(2)] {
            let lazy_session = Miner::new(&db)
                .min_sup(2)
                .mode(mode)
                .constraints(constraints)
                .session();
            let prepared_session = prepared
                .miner()
                .min_sup(2)
                .mode(mode)
                .constraints(constraints)
                .session();
            let expected = lazy_session.run().patterns;
            assert_eq!(
                lazy_session.stream().collect::<Vec<_>>(),
                expected,
                "lazy stream diverges for {mode:?} / {}",
                constraints.describe()
            );
            assert_eq!(
                prepared_session.stream().collect::<Vec<_>>(),
                expected,
                "prepared stream diverges for {mode:?} / {}",
                constraints.describe()
            );
        }
    }
}

#[test]
fn stream_supports_early_exit_and_iterator_composition() {
    let db = running_example();
    let session = Miner::new(&db).min_sup(2).mode(Mode::All).session();
    let full = session.run();
    assert!(full.len() > 5, "need enough patterns to early-exit");

    // `take` pulls exactly the prefix of the materialized order.
    let prefix: Vec<MinedPattern> = session.stream().take(5).collect();
    assert_eq!(prefix.as_slice(), &full.patterns[..5]);

    // `find` early-exits as soon as the predicate matches.
    let long = session.stream().find(|mp| mp.pattern.len() >= 3);
    assert_eq!(
        long,
        full.patterns
            .iter()
            .find(|mp| mp.pattern.len() >= 3)
            .cloned()
    );

    // Adapters compose: support histogram over a bounded prefix.
    let total: u64 = session.stream().take(10).map(|mp| mp.support).sum();
    assert_eq!(
        total,
        full.patterns[..10].iter().map(|mp| mp.support).sum::<u64>()
    );
}

#[test]
fn stream_reports_truncation_like_the_push_path() {
    let db = running_example();
    let session = Miner::new(&db)
        .min_sup(1)
        .mode(Mode::All)
        .max_patterns(4)
        .session();
    let mut stream = session.stream();
    let pulled: Vec<MinedPattern> = stream.by_ref().collect();
    let outcome = session.run();
    assert!(outcome.truncated);
    assert_eq!(pulled, outcome.patterns);
    assert!(stream.truncated());
    assert_eq!(stream.emitted(), 4);
}

#[test]
fn parallel_sessions_stream_the_merged_result() {
    let db = running_example();
    let session = Miner::new(&db)
        .min_sup(2)
        .mode(Mode::Closed)
        .threads(4)
        .session();
    assert_eq!(session.stream().collect::<Vec<_>>(), session.run().patterns);
}
