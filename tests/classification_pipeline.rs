//! End-to-end integration test of the classification pipeline: labeled trace
//! generation (synthgen) → closed repetitive pattern mining (rgs-core) →
//! feature extraction, selection, training, and evaluation (rgs-features).

use repetitive_gapped_mining::features::classify::{
    cross_validate, Evaluation, MultinomialNaiveBayes, NearestCentroid,
};
use repetitive_gapped_mining::features::pipeline::{run_pipeline, ClassifierKind, PipelineConfig};
use repetitive_gapped_mining::features::{
    extract_features, select_top_k, LabeledDatabase, SelectionMethod,
};
use repetitive_gapped_mining::prelude::*;
use repetitive_gapped_mining::synthgen::labeled::{LabeledTraceConfig, BUGGY_LABEL};

fn corpus() -> LabeledDatabase {
    let (db, labels) = LabeledTraceConfig::default()
        .with_traces_per_class(40)
        .with_seed(77)
        .generate();
    LabeledDatabase::new(db, labels).expect("aligned labels")
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig::new(40, 6).with_max_pattern_length(4)
}

#[test]
fn pipeline_separates_buggy_from_normal_traces_on_held_out_data() {
    let data = corpus();
    let (train, test) = data.stratified_split(0.7, 3).unwrap();
    let report = run_pipeline(&train, &pipeline_config()).unwrap();
    assert!(report.mined_patterns > 0);
    assert!(!report.pipeline.selected.is_empty());
    let eval = report.pipeline.evaluate(&test);
    assert!(
        eval.accuracy() >= 0.7,
        "held-out accuracy {} too low",
        eval.accuracy()
    );
    // Both classes must be predicted at least once (no degenerate model).
    let predictions = report.pipeline.predict(test.database());
    assert!(predictions.contains(&0));
    assert!(predictions.contains(&1));
}

#[test]
fn selected_features_capture_the_buggy_behaviour() {
    let data = corpus();
    let report = run_pipeline(&data, &pipeline_config()).unwrap();
    let catalog = data.database().catalog();
    let rendered: Vec<String> = report
        .pipeline
        .feature_patterns()
        .iter()
        .map(|p| p.render_with(catalog, " "))
        .collect();
    // The error/retry burst is the hallmark of buggy traces; at least one of
    // the selected discriminative patterns must mention it.
    assert!(
        rendered
            .iter()
            .any(|p| p.contains("error") || p.contains("retry")),
        "selected features {rendered:?} miss the buggy behaviour"
    );
}

#[test]
fn both_classifiers_beat_a_majority_baseline_in_cross_validation() {
    let data = corpus();
    // Mine + select once on the full corpus, then cross-validate the
    // classifiers over the resulting feature matrix.
    let mined = Miner::new(data.database())
        .min_sup(40)
        .mode(Mode::Closed)
        .max_pattern_length(4)
        .run();
    let candidates: Vec<Pattern> = mined
        .patterns
        .iter()
        .filter(|mp| mp.pattern.len() >= 2)
        .map(|mp| mp.pattern.clone())
        .collect();
    assert!(!candidates.is_empty());
    let matrix = extract_features(data.database(), &candidates);
    let selected = select_top_k(
        &matrix,
        data.class_ids(),
        SelectionMethod::MeanDifference,
        6,
    );
    let columns: Vec<usize> = selected.iter().map(|s| s.column).collect();
    let reduced = matrix.select_columns(&columns);
    let folds = data.stratified_folds(4, 9).unwrap();

    let nc_evals = cross_validate(&reduced, data.class_ids(), &folds, NearestCentroid::new);
    let nb_evals = cross_validate(
        &reduced,
        data.class_ids(),
        &folds,
        MultinomialNaiveBayes::new,
    );
    for evals in [&nc_evals, &nb_evals] {
        let mean_accuracy: f64 =
            evals.iter().map(Evaluation::accuracy).sum::<f64>() / evals.len() as f64;
        assert!(
            mean_accuracy > 0.6,
            "cross-validated accuracy {mean_accuracy} is not better than chance"
        );
    }
}

#[test]
fn naive_bayes_pipeline_variant_also_works_end_to_end() {
    let data = corpus();
    let config = pipeline_config()
        .with_classifier(ClassifierKind::NaiveBayes)
        .with_selection(SelectionMethod::InformationGain);
    let report = run_pipeline(&data, &config).unwrap();
    assert!(report.training_accuracy >= 0.6);
}

#[test]
fn per_sequence_features_reflect_within_trace_repetition() {
    // The defining property of repetitive-support features: a buggy trace
    // with many error-retry bursts gets a *larger* feature value than a
    // normal trace where the pattern occurs once, even though both contain
    // the pattern (presence is identical).
    let data = corpus();
    let db = data.database();
    let error_retry = Pattern::new(db.pattern_from_labels(&["error", "retry"]).unwrap());
    let matrix = extract_features(db, &[error_retry]);
    let mut buggy_total = 0.0;
    let mut buggy_count = 0.0;
    let mut normal_total = 0.0;
    let mut normal_count = 0.0;
    for (seq, label) in (0..data.num_sequences()).zip(data.class_ids()) {
        let value = matrix.value(seq, 0);
        if data.class_names()[*label] == BUGGY_LABEL {
            buggy_total += value;
            buggy_count += 1.0;
        } else {
            normal_total += value;
            normal_count += 1.0;
        }
    }
    let buggy_mean = buggy_total / buggy_count;
    let normal_mean = normal_total / normal_count;
    assert!(
        buggy_mean > normal_mean * 2.0,
        "buggy mean {buggy_mean} should dwarf normal mean {normal_mean}"
    );
}
