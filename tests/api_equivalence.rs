//! Cross-API equivalence suite: every deprecated free function and its
//! `Miner` builder equivalent must return identical pattern lists (same
//! patterns, same supports, same order) on
//!
//! * the paper's Example 1.1 and the Table III running example,
//! * the Gazelle- and TCAS-style synthetic generators,
//! * randomized small databases (deterministic seeded PRNG).
//!
//! Plus: streaming-sink behaviour (early cancellation, budgets) and the
//! previously impossible gap-constrained top-k combination end to end.

#![allow(deprecated)] // this suite exists to pin the legacy shims

use std::ops::ControlFlow;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use repetitive_gapped_mining::prelude::*;
use repetitive_gapped_mining::synthgen::{GazelleConfig, TcasConfig};

fn example_1_1() -> SequenceDatabase {
    SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"])
}

fn running_example() -> SequenceDatabase {
    SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
}

fn gazelle() -> SequenceDatabase {
    GazelleConfig::default().scaled_down(150).generate()
}

fn tcas() -> SequenceDatabase {
    TcasConfig::default().scaled_down(48).generate()
}

/// Asserts all six legacy entry points against their engine equivalents on
/// one database at one threshold.
fn assert_all_six_equivalent(db: &SequenceDatabase, min_sup: u64, label: &str) {
    let config = MiningConfig::new(min_sup).with_max_patterns(100_000);
    let constraints = GapConstraints::max_gap(2);

    let cases: Vec<(&str, MiningOutcome, MiningOutcome)> = vec![
        (
            "mine_all",
            mine_all(db, &config),
            Miner::new(db)
                .min_sup(min_sup)
                .mode(Mode::All)
                .max_patterns(100_000)
                .run(),
        ),
        (
            "mine_closed",
            mine_closed(db, &config),
            Miner::new(db)
                .min_sup(min_sup)
                .mode(Mode::Closed)
                .max_patterns(100_000)
                .run(),
        ),
        (
            "mine_maximal",
            mine_maximal(db, &config),
            Miner::new(db)
                .min_sup(min_sup)
                .mode(Mode::Maximal)
                .max_patterns(100_000)
                .run(),
        ),
        (
            "mine_all_constrained",
            mine_all_constrained(db, &config, constraints),
            Miner::new(db)
                .min_sup(min_sup)
                .mode(Mode::All)
                .constraints(constraints)
                .max_patterns(100_000)
                .run(),
        ),
        (
            "mine_closed_constrained",
            mine_closed_constrained(db, &config, constraints),
            Miner::new(db)
                .min_sup(min_sup)
                .mode(Mode::Closed)
                .constraints(constraints)
                .max_patterns(100_000)
                .run(),
        ),
        (
            "mine_top_k",
            mine_top_k(db, &TopKConfig::new(10).with_min_sup_floor(min_sup)),
            Miner::new(db)
                .min_sup(min_sup)
                .mode(Mode::Closed)
                .top_k(10)
                .min_len(2)
                .run(),
        ),
    ];
    for (name, legacy, engine) in cases {
        assert_eq!(
            legacy.patterns, engine.patterns,
            "{name} diverges from its Miner equivalent on {label} (min_sup {min_sup})"
        );
        assert_eq!(
            legacy.truncated, engine.truncated,
            "{name} truncation flag diverges on {label}"
        );
    }
}

#[test]
fn legacy_and_engine_agree_on_the_paper_examples() {
    for min_sup in [1, 2, 3] {
        assert_all_six_equivalent(&example_1_1(), min_sup, "Example 1.1");
        assert_all_six_equivalent(&running_example(), min_sup, "Table III");
    }
}

#[test]
fn legacy_and_engine_agree_on_gazelle_like_data() {
    let db = gazelle();
    let min_sup = (db.num_sequences() as u64 / 8).max(4);
    assert_all_six_equivalent(&db, min_sup, "Gazelle synthetic");
}

#[test]
fn legacy_and_engine_agree_on_tcas_like_data() {
    let db = tcas();
    let min_sup = (db.num_sequences() as u64) * 2;
    assert_all_six_equivalent(&db, min_sup, "TCAS synthetic");
}

#[test]
fn legacy_and_engine_agree_on_random_databases() {
    let labels = ["A", "B", "C", "D"];
    let mut rng = StdRng::seed_from_u64(0xE0_1111);
    for case in 0..40 {
        let rows: Vec<Vec<&str>> = (0..rng.gen_range(1..=4usize))
            .map(|_| {
                (0..rng.gen_range(0..=9usize))
                    .map(|_| labels[rng.gen_range(0..labels.len())])
                    .collect()
            })
            .collect();
        let db = SequenceDatabase::from_token_rows(&rows);
        let min_sup = rng.gen_range(1..4u64);
        assert_all_six_equivalent(&db, min_sup, &format!("random case {case}"));
    }
}

#[test]
fn pattern_sink_cancels_early_and_preserves_prefix_order() {
    let db = running_example();
    let full = Miner::new(&db).min_sup(2).mode(Mode::All).run();
    assert!(full.len() > 4, "needs enough patterns to cancel mid-run");

    let mut streamed: Vec<MinedPattern> = Vec::new();
    let report =
        Miner::new(&db)
            .min_sup(2)
            .mode(Mode::All)
            .run_with_sink(&mut |mp: MinedPattern| {
                streamed.push(mp);
                if streamed.len() == 4 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            });
    assert_eq!(
        streamed.len(),
        4,
        "emission stops at the cancellation point"
    );
    assert!(report.cancelled);
    assert!(!report.truncated);
    assert_eq!(report.emitted, 4);
    // The streamed prefix is exactly the materialized run's prefix: the
    // engine emits incrementally in DFS order.
    assert_eq!(&full.patterns[..4], streamed.as_slice());
}

#[test]
fn budget_and_deadline_sinks_bound_runs() {
    let db = tcas();
    let mut budget = BudgetSink::new(CollectSink::new(), 25);
    let report = Miner::new(&db)
        .min_sup(2)
        .mode(Mode::All)
        .run_with_sink(&mut budget);
    assert!(report.cancelled);
    assert_eq!(budget.into_inner().into_patterns().len(), 25);

    // An already-expired deadline lets nothing through.
    let past = std::time::Instant::now();
    let mut expired = DeadlineSink::new(CountSink::new(), past);
    let report = Miner::new(&db)
        .min_sup(2)
        .mode(Mode::All)
        .run_with_sink(&mut expired);
    assert!(report.cancelled);
    assert_eq!(expired.into_inner().count, 0);
}

#[test]
fn gap_constrained_top_k_works_end_to_end() {
    // The combination the six legacy functions could not express: rank the
    // best k *closed* patterns under gap constraints, on generated data.
    let db = tcas();
    let constraints = GapConstraints::max_gap(2).with_max_window(12);
    let k = 8;
    let floor = (db.num_sequences() as u64) * 2;
    let topk = Miner::new(&db)
        .min_sup(floor)
        .mode(Mode::Closed)
        .constraints(constraints)
        .top_k(k)
        .min_len(2)
        .run();
    assert!(!topk.is_empty());
    assert!(topk.len() <= k);
    // Sorted by support, supports are true constrained supports, and the
    // result equals ranking the full constrained closed set.
    for w in topk.patterns.windows(2) {
        assert!(w[0].support >= w[1].support);
    }
    for mp in &topk.patterns {
        assert_eq!(
            mp.support,
            constrained_support(&db, mp.pattern.events(), constraints)
        );
        assert!(mp.support >= floor);
        assert!(mp.pattern.len() >= 2);
    }
    let mut full = Miner::new(&db)
        .min_sup(floor)
        .mode(Mode::Closed)
        .constraints(constraints)
        .run();
    full.patterns.retain(|mp| mp.pattern.len() >= 2);
    full.sort_for_report();
    full.patterns.truncate(k);
    assert_eq!(topk.patterns, full.patterns);
}

#[test]
fn stats_and_truncation_are_uniform_across_modes() {
    let db = running_example();
    for mode in [Mode::All, Mode::Closed, Mode::Maximal, Mode::TopK] {
        let outcome = Miner::new(&db).min_sup(1).mode(mode).run();
        assert!(
            outcome.stats.elapsed_seconds > 0.0,
            "{mode:?} did not record elapsed time"
        );
    }
    for mode in [Mode::All, Mode::Closed, Mode::Maximal] {
        let capped = Miner::new(&db).min_sup(1).mode(mode).max_patterns(2).run();
        assert!(capped.truncated, "{mode:?} ignored max_patterns");
        assert!(capped.len() <= 2);
    }
}
