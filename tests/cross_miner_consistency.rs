//! Cross-crate consistency tests: the repetitive miners, the sequential
//! baselines and the semantics calculators must agree wherever their
//! definitions coincide. Random cases come from a deterministic seeded PRNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use repetitive_gapped_mining::baselines::prefixspan::{
    mine_sequential, sequence_support, SequentialConfig,
};
use repetitive_gapped_mining::baselines::semantics;
use repetitive_gapped_mining::baselines::{
    mine_closed_sequential, mine_closed_sequential_by_filter,
};
use repetitive_gapped_mining::prelude::*;

const LABELS: [&str; 4] = ["A", "B", "C", "D"];
const CASES: usize = 48;

fn small_database(rng: &mut StdRng) -> SequenceDatabase {
    let rows: Vec<Vec<&str>> = (0..rng.gen_range(1..=4usize))
        .map(|_| {
            (0..rng.gen_range(0..=8usize))
                .map(|_| LABELS[rng.gen_range(0..LABELS.len())])
                .collect()
        })
        .collect();
    SequenceDatabase::from_token_rows(&rows)
}

/// Repetitive support is always at least the sequence-count support, and
/// single-event repetitive support equals the raw occurrence count.
#[test]
fn repetitive_support_dominates_sequence_support() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    for _ in 0..CASES {
        let db = small_database(&mut rng);
        let events: Vec<_> = db.catalog().ids().collect();
        for &a in &events {
            for &b in &events {
                let pattern = vec![a, b];
                let repetitive = repetitive_support(&db, &pattern);
                let sequential = sequence_support(&db, &pattern);
                assert!(
                    repetitive >= sequential,
                    "repetitive {repetitive} < sequential {sequential} for {pattern:?}"
                );
            }
        }
        for &a in &events {
            assert_eq!(
                repetitive_support(&db, &[a]),
                db.event_occurrences(a) as u64
            );
        }
    }
}

/// The two closed sequential miners (BIDE-style DFS check and CloSpan-lite
/// post-filtering) produce identical results.
#[test]
fn closed_sequential_miners_agree() {
    let mut rng = StdRng::seed_from_u64(0xD0D0);
    for case in 0..CASES {
        let db = small_database(&mut rng);
        let min_sup = rng.gen_range(1..3u64);
        let config = SequentialConfig::new(min_sup);
        let mut bide = mine_closed_sequential(&db, &config);
        let mut filtered = mine_closed_sequential_by_filter(&db, &config);
        bide.sort_by(|a, b| a.events.cmp(&b.events));
        filtered.sort_by(|a, b| a.events.cmp(&b.events));
        assert_eq!(bide, filtered, "case {case}: min_sup {min_sup}");
    }
}

/// Any pattern mined sequentially with support s is also repetitively
/// frequent with threshold s.
#[test]
fn sequentially_frequent_patterns_are_repetitively_frequent() {
    let mut rng = StdRng::seed_from_u64(0xE0E0);
    for _ in 0..CASES {
        let db = small_database(&mut rng);
        let min_sup = rng.gen_range(1..3u64);
        let sequential = mine_sequential(&db, &SequentialConfig::new(min_sup));
        for p in &sequential {
            let repetitive = repetitive_support(&db, &p.events);
            assert!(
                repetitive >= p.support,
                "pattern {:?}: repetitive {} < sequential {}",
                p.events,
                repetitive,
                p.support
            );
        }
    }
}

/// The iterative-pattern and minimal-window supports never exceed the
/// repetitive support for 2-event patterns.
#[test]
fn two_event_semantics_inequalities() {
    let mut rng = StdRng::seed_from_u64(0xF0F0);
    for _ in 0..CASES {
        let db = small_database(&mut rng);
        let events: Vec<_> = db.catalog().ids().collect();
        for &a in &events {
            for &b in &events {
                if a == b {
                    continue;
                }
                let pattern = vec![a, b];
                let repetitive = repetitive_support(&db, &pattern);
                let iterative = semantics::iterative_pattern_support(&db, &pattern);
                let minimal = semantics::minimal_window_support(&db, &pattern);
                assert!(
                    iterative <= repetitive,
                    "iterative {iterative} > repetitive {repetitive} for {pattern:?}"
                );
                assert!(
                    minimal <= repetitive,
                    "minimal-window {minimal} > repetitive {repetitive} for {pattern:?}"
                );
            }
        }
    }
}

#[test]
fn generators_feed_all_miners_without_panicking() {
    use repetitive_gapped_mining::synthgen::{GazelleConfig, TcasConfig};
    let gazelle = GazelleConfig::default().scaled_down(200).generate();
    let tcas = TcasConfig::default().scaled_down(64).generate();
    for db in [&gazelle, &tcas] {
        let closed = Miner::new(db)
            .min_sup(20)
            .mode(Mode::Closed)
            .max_patterns(20_000)
            .run();
        let sequential = mine_sequential(
            db,
            &SequentialConfig::new((db.num_sequences() as u64 / 4).max(2))
                .with_max_patterns(20_000),
        );
        // Sanity: mining completed and produced bounded output.
        assert!(closed.len() <= 20_000);
        assert!(sequential.len() <= 20_000);
    }
}
