//! Cross-crate consistency tests: the repetitive miners, the sequential
//! baselines and the semantics calculators must agree wherever their
//! definitions coincide.

use proptest::prelude::*;

use repetitive_gapped_mining::baselines::prefixspan::{
    mine_sequential, sequence_support, SequentialConfig,
};
use repetitive_gapped_mining::baselines::semantics;
use repetitive_gapped_mining::baselines::{
    mine_closed_sequential, mine_closed_sequential_by_filter,
};
use repetitive_gapped_mining::prelude::*;

fn small_database() -> impl Strategy<Value = SequenceDatabase> {
    let sequence = prop::collection::vec(0u32..4, 0..=8);
    prop::collection::vec(sequence, 1..=4).prop_map(|rows| {
        let labels = ["A", "B", "C", "D"];
        let string_rows: Vec<Vec<&str>> = rows
            .iter()
            .map(|row| row.iter().map(|&e| labels[e as usize]).collect())
            .collect();
        SequenceDatabase::from_token_rows(&string_rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Repetitive support is always at least the sequence-count support
    /// (every sequence containing the pattern contributes at least one
    /// non-overlapping instance), and single-event repetitive support equals
    /// the raw occurrence count.
    #[test]
    fn repetitive_support_dominates_sequence_support(db in small_database()) {
        let events: Vec<_> = db.catalog().ids().collect();
        for &a in &events {
            for &b in &events {
                let pattern = vec![a, b];
                let repetitive = repetitive_support(&db, &pattern);
                let sequential = sequence_support(&db, &pattern);
                prop_assert!(repetitive >= sequential,
                    "repetitive {repetitive} < sequential {sequential} for {pattern:?}");
            }
        }
        for &a in &events {
            prop_assert_eq!(repetitive_support(&db, &[a]), db.event_occurrences(a) as u64);
        }
    }

    /// The two closed sequential miners (BIDE-style DFS check and CloSpan-
    /// lite post-filtering) produce identical results.
    #[test]
    fn closed_sequential_miners_agree(db in small_database(), min_sup in 1u64..3) {
        let config = SequentialConfig::new(min_sup);
        let mut bide = mine_closed_sequential(&db, &config);
        let mut filtered = mine_closed_sequential_by_filter(&db, &config);
        bide.sort_by(|a, b| a.events.cmp(&b.events));
        filtered.sort_by(|a, b| a.events.cmp(&b.events));
        prop_assert_eq!(bide, filtered);
    }

    /// PrefixSpan's reported supports always match direct recounting, and
    /// every pattern reported by the repetitive miner with min_sup = N (the
    /// number of sequences) is also a sequential pattern appearing in every
    /// sequence at least once... not in general; instead check that any
    /// pattern mined sequentially with support s is also repetitively
    /// frequent with threshold s.
    #[test]
    fn sequentially_frequent_patterns_are_repetitively_frequent(db in small_database(), min_sup in 1u64..3) {
        let sequential = mine_sequential(&db, &SequentialConfig::new(min_sup));
        for p in &sequential {
            let repetitive = repetitive_support(&db, &p.events);
            prop_assert!(repetitive >= p.support,
                "pattern {:?}: repetitive {} < sequential {}", p.events, repetitive, p.support);
        }
    }

    /// The iterative-pattern and minimal-window supports never exceed the
    /// repetitive support for 2-event patterns: both capture a subset of
    /// non-overlapping occurrences.
    #[test]
    fn two_event_semantics_inequalities(db in small_database()) {
        let events: Vec<_> = db.catalog().ids().collect();
        for &a in &events {
            for &b in &events {
                if a == b {
                    continue;
                }
                let pattern = vec![a, b];
                let repetitive = repetitive_support(&db, &pattern);
                let iterative = semantics::iterative_pattern_support(&db, &pattern);
                let minimal = semantics::minimal_window_support(&db, &pattern);
                prop_assert!(iterative <= repetitive,
                    "iterative {iterative} > repetitive {repetitive} for {pattern:?}");
                prop_assert!(minimal <= repetitive,
                    "minimal-window {minimal} > repetitive {repetitive} for {pattern:?}");
            }
        }
    }
}

#[test]
fn generators_feed_all_miners_without_panicking() {
    use repetitive_gapped_mining::synthgen::{GazelleConfig, TcasConfig};
    let gazelle = GazelleConfig::default().scaled_down(200).generate();
    let tcas = TcasConfig::default().scaled_down(64).generate();
    for db in [&gazelle, &tcas] {
        let closed = mine_closed(db, &MiningConfig::new(20).with_max_patterns(20_000));
        let sequential = mine_sequential(
            db,
            &SequentialConfig::new((db.num_sequences() as u64 / 4).max(2)).with_max_patterns(20_000),
        );
        // Sanity: mining completed and produced bounded output.
        assert!(closed.len() <= 20_000);
        assert!(sequential.len() <= 20_000);
    }
}
