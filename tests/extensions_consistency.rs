//! Cross-crate integration tests of the extension features (gap-constrained
//! mining, top-k mining, maximal mining) on generated workloads.

use repetitive_gapped_mining::prelude::*;
use repetitive_gapped_mining::synthgen::{QuestConfig, TcasConfig};

/// A small but non-trivial synthetic dataset shared by the tests.
fn quest_db() -> SequenceDatabase {
    QuestConfig::paper(5, 20, 10, 20)
        .scaled_down(100)
        .generate()
}

#[test]
fn constrained_mining_nests_by_constraint_tightness() {
    // Tighter constraints can only shrink supports, so the frequent set at a
    // fixed threshold shrinks as the window gets tighter.
    let db = quest_db();
    let constrained = |window: u32| {
        Miner::new(&db)
            .min_sup(8)
            .mode(Mode::All)
            .constraints(GapConstraints::max_window(window))
            .max_patterns(100_000)
            .run()
    };
    let loose = constrained(50);
    let medium = constrained(10);
    let tight = constrained(3);
    assert!(loose.len() >= medium.len());
    assert!(medium.len() >= tight.len());
    // Every pattern frequent under the tight window is frequent under the
    // loose one (its support can only grow as the window widens).
    for mp in &tight.patterns {
        assert!(
            loose.contains(&mp.pattern),
            "{:?} frequent under the tight window but missing under the loose one",
            mp.pattern
        );
    }
}

#[test]
fn constrained_supports_increase_with_the_window() {
    let db = quest_db();
    let closed = Miner::new(&db).min_sup(10).mode(Mode::Closed).run();
    for mp in closed.patterns.iter().take(50) {
        let events = mp.pattern.events();
        let tight = constrained_support(&db, events, GapConstraints::max_window(4));
        let loose = constrained_support(&db, events, GapConstraints::max_window(40));
        let unconstrained = repetitive_support(&db, events);
        assert!(tight <= loose, "{:?}", mp.pattern);
        assert!(loose <= unconstrained, "{:?}", mp.pattern);
    }
}

#[test]
fn top_k_is_consistent_with_closed_mining_on_quest_data() {
    let db = quest_db();
    let k = 20;
    let topk = Miner::new(&db)
        .min_sup(4)
        .mode(Mode::Closed)
        .top_k(k)
        .min_len(2)
        .run();
    assert!(topk.len() <= k);
    assert!(!topk.is_empty());
    // The supports reported by top-k match a full closed run restricted to
    // length >= 2.
    let mut closed = Miner::new(&db).min_sup(4).mode(Mode::Closed).run();
    closed.patterns.retain(|mp| mp.pattern.len() >= 2);
    closed.sort_for_report();
    let expected: Vec<u64> = closed
        .patterns
        .iter()
        .take(topk.len())
        .map(|mp| mp.support)
        .collect();
    let got: Vec<u64> = topk.patterns.iter().map(|mp| mp.support).collect();
    assert_eq!(got, expected);
}

#[test]
fn maximal_mining_summarizes_the_tcas_like_workload() {
    let db = TcasConfig::default().scaled_down(64).generate();
    let min_sup = (db.num_sequences() as u64) * 2;
    let closed = Miner::new(&db)
        .min_sup(min_sup)
        .mode(Mode::Closed)
        .max_patterns(200_000)
        .run();
    let maximal = Miner::new(&db)
        .min_sup(min_sup)
        .mode(Mode::Maximal)
        .max_patterns(200_000)
        .run();
    assert!(!maximal.is_empty());
    assert!(maximal.len() <= closed.len());
    // Loop-structured traces must produce at least one non-trivial maximal
    // behaviour.
    assert!(maximal.max_pattern_length() >= 2);
    // Every maximal pattern is closed and not contained in another closed
    // pattern.
    for mp in &maximal.patterns {
        assert!(closed.contains(&mp.pattern));
        assert!(
            !closed
                .patterns
                .iter()
                .any(|other| other.pattern.is_proper_superpattern_of(&mp.pattern)),
            "{:?} is subsumed",
            mp.pattern
        );
    }
}

#[test]
fn gap_constrained_closed_mining_respects_the_constraints_on_real_shapes() {
    let db = TcasConfig::default().scaled_down(64).generate();
    let constraints = GapConstraints::max_gap(2).with_max_window(12);
    let min_sup = (db.num_sequences() as u64) * 2;
    let closed = Miner::new(&db)
        .min_sup(min_sup)
        .mode(Mode::Closed)
        .constraints(constraints)
        .max_patterns(100_000)
        .run();
    assert!(!closed.is_empty());
    // Spot-check the reported supports and that instances admitted by the
    // constraints exist (support > 0 implies admissible landmarks exist).
    for mp in closed.patterns.iter().take(30) {
        assert_eq!(
            mp.support,
            constrained_support(&db, mp.pattern.events(), constraints)
        );
        assert!(mp.support >= min_sup);
    }
}

#[test]
fn top_k_with_floor_equals_plain_top_k_prefix() {
    // Raising the floor must not change the top of the ranking as long as
    // the floor stays below the k-th best support.
    let db = quest_db();
    let top10 = |floor: u64| {
        Miner::new(&db)
            .min_sup(floor)
            .mode(Mode::Closed)
            .top_k(10)
            .min_len(2)
            .run()
    };
    let unfloored = top10(2);
    let kth = unfloored.patterns.last().map(|mp| mp.support).unwrap_or(2);
    if kth > 3 {
        let floored = top10(3);
        let a: Vec<u64> = unfloored.patterns.iter().map(|mp| mp.support).collect();
        let b: Vec<u64> = floored.patterns.iter().map(|mp| mp.support).collect();
        assert_eq!(a, b);
    }
}
